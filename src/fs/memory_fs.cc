#include "src/fs/memory_fs.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <utility>

#include "src/fs/path.h"
#include "src/journal/journal.h"
#include "src/obs/obs.h"

namespace ssmc {

MemoryFileSystem::MemoryFileSystem(StorageManager& storage,
                                   MemoryFsOptions options)
    : storage_(storage),
      options_(options),
      buffer_(storage, options.write_buffer_pages,
              [this](const BlockKey& key, const PayloadRef& data,
                     TenantId tenant) {
                return FlushBlock(key, data, tenant);
              }),
      root_(std::make_unique<Node>()) {
  root_->is_dir = true;
  // The write buffer is the dirty side of the residency map; the manager
  // resolves kDirty through it.
  storage_.residency().BindDirtyBackend(&buffer_);
  // Claim the fixed superblock that anchors metadata checkpoints. On a
  // recovery path the fresh storage manager has it free; reservation only
  // fails if two file systems share one manager, which is unsupported.
  Status reserved = storage_.ReserveFlashBlock(kSuperblock);
  assert(reserved.ok() && "superblock unavailable");
  (void)reserved;
}

void MemoryFileSystem::set_current_tenant(TenantId tenant) {
  tenant_ = tenant;
  // Promotions triggered by this tenant's reads are billed to it.
  storage_.residency().set_current_tenant(tenant);
}

MemoryFileSystem::~MemoryFileSystem() {
  // Clean-cache keys and heat die with the namespace; unbind the buffer
  // before it is destroyed.
  storage_.residency().DetachFilesystem();
  if (obs_ != nullptr) {
    obs_->metrics().FlushAndRemoveCollector("fs");
  }
}

Residency MemoryFileSystem::OracleResolve(const BlockKey& key,
                                          int64_t flash_block) const {
  if (buffer_.Contains(key)) {
    return Residency::kDirty;
  }
  if (flash_block >= 0) {
    return Residency::kFlash;
  }
  return Residency::kHole;
}

void MemoryFileSystem::CheckResolve(Residency got, const BlockKey& key,
                                    int64_t flash_block) {
  if (!options_.validate_residency) {
    return;
  }
  const Residency want = OracleResolve(key, flash_block);
  const bool ok =
      got == want ||
      ((got == Residency::kClean || got == Residency::kNvm) &&
       want == Residency::kFlash && storage_.residency().enabled());
  if (!ok) {
    ++residency_validation_failures_;
  }
}

Status MemoryFileSystem::JournalAppend(JournalRecord record) {
  if (options_.journal == nullptr || replaying_) {
    return Status::Ok();
  }
  Result<uint64_t> lsn = options_.journal->Append(std::move(record));
  return lsn.ok() ? Status::Ok() : lsn.status();
}

void MemoryFileSystem::MaybeCompact() {
  if (options_.journal == nullptr || replaying_ ||
      !options_.journal->NeedsCompaction()) {
    return;
  }
  (void)CheckpointMetadata();
}

MemoryFileSystem::Node* MemoryFileSystem::Lookup(std::string_view path) {
  if (!IsValidPath(path)) {
    return nullptr;
  }
  Node* node = root_.get();
  for (const std::string_view component : PathComponents(path)) {
    if (!node->is_dir) {
      return nullptr;
    }
    storage_.ChargeMetadataRead(kDirEntryBytes);
    auto it = node->children.find(component);
    if (it == node->children.end()) {
      return nullptr;
    }
    node = it->second.get();
  }
  return node;
}

MemoryFileSystem::Node* MemoryFileSystem::LookupParent(std::string_view path) {
  if (!IsValidPath(path) || path == "/") {
    return nullptr;
  }
  Node* parent = Lookup(ParentPathView(path));
  if (parent == nullptr || !parent->is_dir) {
    return nullptr;
  }
  return parent;
}

Status MemoryFileSystem::Create(const std::string& path) {
  Node* parent = LookupParent(path);
  if (parent == nullptr) {
    return NotFoundError("no parent directory for " + path);
  }
  const std::string base = BaseName(path);
  if (parent->children.find(base) != parent->children.end()) {
    return AlreadyExistsError(path);
  }
  {
    JournalRecord rec;
    rec.type = JournalRecordType::kCreate;
    rec.file_id = next_inode_id_;
    rec.tenant = tenant_;
    rec.path = path;
    SSMC_RETURN_IF_ERROR(JournalAppend(std::move(rec)));
  }
  auto node = std::make_unique<Node>();
  node->is_dir = false;
  node->inode.id = next_inode_id_++;
  node->inode.last_writer = tenant_;
  inode_index_[node->inode.id] = &node->inode;
  storage_.ChargeMetadataWrite(kDirEntryBytes + kInodeBytes);
  parent->children.emplace(base, std::move(node));
  stats_.creates.Add();
  MaybeCompact();
  return Status::Ok();
}

Status MemoryFileSystem::Mkdir(const std::string& path) {
  Node* parent = LookupParent(path);
  if (parent == nullptr) {
    return NotFoundError("no parent directory for " + path);
  }
  const std::string base = BaseName(path);
  if (parent->children.find(base) != parent->children.end()) {
    return AlreadyExistsError(path);
  }
  {
    JournalRecord rec;
    rec.type = JournalRecordType::kMkdir;
    rec.path = path;
    SSMC_RETURN_IF_ERROR(JournalAppend(std::move(rec)));
  }
  auto node = std::make_unique<Node>();
  node->is_dir = true;
  storage_.ChargeMetadataWrite(kDirEntryBytes);
  parent->children.emplace(base, std::move(node));
  MaybeCompact();
  return Status::Ok();
}

void MemoryFileSystem::ReleaseBlock(Inode& inode, uint64_t block_index) {
  const BlockKey key{inode.id, block_index};
  buffer_.Drop(key);
  storage_.residency().InvalidateClean(key);
  storage_.residency().ForgetHeat(key);
  if (block_index < inode.flash_blocks.size() &&
      inode.flash_blocks[block_index] >= 0) {
    (void)storage_.FreeFlashBlock(
        static_cast<uint64_t>(inode.flash_blocks[block_index]));
    inode.flash_blocks[block_index] = -1;
  }
}

Status MemoryFileSystem::Unlink(const std::string& path) {
  Node* parent = LookupParent(path);
  if (parent == nullptr) {
    return NotFoundError("no parent directory for " + path);
  }
  auto it = parent->children.find(BaseNameView(path));
  if (it == parent->children.end()) {
    return NotFoundError(path);
  }
  if (it->second->is_dir) {
    return FailedPreconditionError(path + " is a directory");
  }
  {
    JournalRecord rec;
    rec.type = JournalRecordType::kUnlink;
    rec.path = path;
    SSMC_RETURN_IF_ERROR(JournalAppend(std::move(rec)));
  }
  Inode& inode = it->second->inode;
  const uint64_t blocks = inode.flash_blocks.size();
  for (uint64_t b = 0; b < blocks; ++b) {
    ReleaseBlock(inode, b);
  }
  // Also drop buffered blocks beyond the flash map (never-flushed tail).
  const uint64_t total_blocks =
      (inode.size + block_bytes() - 1) / block_bytes();
  for (uint64_t b = blocks; b < total_blocks; ++b) {
    const BlockKey key{inode.id, b};
    buffer_.Drop(key);
    storage_.residency().ForgetHeat(key);
  }
  inode_index_.erase(inode.id);
  storage_.ChargeMetadataWrite(kDirEntryBytes + kInodeBytes);
  parent->children.erase(it);
  stats_.unlinks.Add();
  MaybeCompact();
  return Status::Ok();
}

Status MemoryFileSystem::Rmdir(const std::string& path) {
  Node* parent = LookupParent(path);
  if (parent == nullptr) {
    return NotFoundError("no parent directory for " + path);
  }
  auto it = parent->children.find(BaseNameView(path));
  if (it == parent->children.end()) {
    return NotFoundError(path);
  }
  if (!it->second->is_dir) {
    return FailedPreconditionError(path + " is not a directory");
  }
  if (!it->second->children.empty()) {
    return FailedPreconditionError(path + " is not empty");
  }
  {
    JournalRecord rec;
    rec.type = JournalRecordType::kRmdir;
    rec.path = path;
    SSMC_RETURN_IF_ERROR(JournalAppend(std::move(rec)));
  }
  storage_.ChargeMetadataWrite(kDirEntryBytes);
  parent->children.erase(it);
  MaybeCompact();
  return Status::Ok();
}

void MemoryFileSystem::AttachObs(Obs* obs) {
  if (obs_ != nullptr && obs_ != obs) {
    obs_->metrics().FlushAndRemoveCollector("fs");
  }
  obs_ = obs;
  buffer_.AttachObs(obs);
  if (obs_ == nullptr) {
    return;
  }
  obs_track_ = obs_->tracer().RegisterTrack("memory-fs");
  MetricsRegistry& m = obs_->metrics();
  Counter* creates = m.AddCounter("fs/creates");
  Counter* unlinks = m.AddCounter("fs/unlinks");
  Counter* reads = m.AddCounter("fs/reads");
  Counter* read_bytes = m.AddCounter("fs/read_bytes");
  Counter* writes = m.AddCounter("fs/writes");
  Counter* written_bytes = m.AddCounter("fs/written_bytes");
  Counter* flash_direct = m.AddCounter("fs/flash_direct_read_bytes");
  Counter* buffered = m.AddCounter("fs/buffered_read_bytes");
  Counter* clean_cached = m.AddCounter("fs/clean_cached_read_bytes");
  Counter* nvm_cached = m.AddCounter("fs/nvm_cached_read_bytes");
  Counter* cow_copies = m.AddCounter("fs/cow_block_copies");
  m.AddCollector("fs", [=, this] {
    auto mirror = [](Counter* dst, const Counter& src) {
      dst->Reset();
      dst->Add(src.value());
    };
    mirror(creates, stats_.creates);
    mirror(unlinks, stats_.unlinks);
    mirror(reads, stats_.reads);
    mirror(read_bytes, stats_.read_bytes);
    mirror(writes, stats_.writes);
    mirror(written_bytes, stats_.written_bytes);
    mirror(flash_direct, stats_.flash_direct_read_bytes);
    mirror(buffered, stats_.buffered_read_bytes);
    mirror(clean_cached, stats_.clean_cached_read_bytes);
    mirror(nvm_cached, stats_.nvm_cached_read_bytes);
    mirror(cow_copies, stats_.cow_block_copies);
    // Per-tenant fs-boundary traffic, registered lazily as tenants appear
    // (AddCounter is idempotent per name).
    for (const auto& e : stats_.by_tenant.entries()) {
      const std::string base = "fs/tenant" + std::to_string(e.tenant) + "/";
      auto mirror_lane = [&](const char* key, const Counter& src) {
        Counter* dst = obs_->metrics().AddCounter(base + key);
        dst->Reset();
        dst->Add(src.value());
      };
      mirror_lane("reads", e.value.reads);
      mirror_lane("read_bytes", e.value.read_bytes);
      mirror_lane("writes", e.value.writes);
      mirror_lane("written_bytes", e.value.written_bytes);
    }
  });
}

Result<uint64_t> MemoryFileSystem::Read(const std::string& path,
                                        uint64_t offset,
                                        std::span<uint8_t> out) {
  const SimTime obs_t0 =
      obs_ != nullptr ? storage_.flash_store().device().clock().now() : 0;
  Node* node = Lookup(path);
  if (node == nullptr) {
    return NotFoundError(path);
  }
  if (node->is_dir) {
    return FailedPreconditionError(path + " is a directory");
  }
  Inode& inode = node->inode;
  if (offset >= inode.size) {
    return uint64_t{0};
  }
  const uint64_t n = std::min<uint64_t>(out.size(), inode.size - offset);
  const uint64_t bs = block_bytes();
  std::vector<uint8_t> staging(bs);
  ResidencyManager& res = storage_.residency();

  uint64_t done = 0;
  while (done < n) {
    const uint64_t pos = offset + done;
    const uint64_t block = pos / bs;
    const uint64_t in_block = pos % bs;
    const uint64_t chunk = std::min(bs - in_block, n - done);
    const BlockKey key{inode.id, block};
    const int64_t slot = block < inode.flash_blocks.size()
                             ? inode.flash_blocks[block]
                             : -1;
    const Residency where = res.Resolve(key, slot);
    CheckResolve(where, key, slot);
    const SimTime now = storage_.flash_store().device().clock().now();

    switch (where) {
      case Residency::kDirty: {
        // Dirty block: serve from the DRAM buffer.
        SSMC_RETURN_IF_ERROR(buffer_.Get(key, staging));
        std::memcpy(out.data() + done, staging.data() + in_block, chunk);
        stats_.buffered_read_bytes.Add(chunk);
        res.TouchRead(key, now);
        break;
      }
      case Residency::kClean: {
        // Promoted hot block: serve from the clean DRAM cache.
        SSMC_RETURN_IF_ERROR(res.ReadClean(
            key, in_block, std::span<uint8_t>(out.data() + done, chunk)));
        stats_.clean_cached_read_bytes.Add(chunk);
        res.TouchRead(key, now);
        break;
      }
      case Residency::kNvm: {
        // Warm block: serve from the byte-addressable NVM tier. The touch
        // may climb it one tier up into the DRAM clean cache.
        SSMC_RETURN_IF_ERROR(res.ReadNvm(
            key, in_block, std::span<uint8_t>(out.data() + done, chunk)));
        stats_.nvm_cached_read_bytes.Add(chunk);
        res.OnNvmRead(key, now);
        break;
      }
      case Residency::kFlash: {
        // Clean block: read directly from flash, byte-granular. The heat
        // update may promote the block for future reads.
        Result<Duration> r = storage_.flash_store().ReadPartial(
            static_cast<uint64_t>(slot), in_block,
            std::span<uint8_t>(out.data() + done, chunk),
            ForTenant(kForegroundIo, tenant_));
        if (!r.ok()) {
          return r.status();
        }
        stats_.flash_direct_read_bytes.Add(chunk);
        res.OnFlashRead(key, static_cast<uint64_t>(slot), now);
        break;
      }
      case Residency::kHole: {
        // Hole: zero fill.
        std::memset(out.data() + done, 0, chunk);
        break;
      }
    }
    done += chunk;
  }
  stats_.reads.Add();
  stats_.read_bytes.Add(n);
  TenantIoStats& lane = stats_.by_tenant.For(tenant_);
  lane.reads.Add();
  lane.read_bytes.Add(n);
  if (obs_ != nullptr) {
    const SimTime t1 = storage_.flash_store().device().clock().now();
    obs_->tracer().Span(obs_track_, "fs-read", obs_t0, t1 - obs_t0,
                        {"bytes", n});
  }
  return n;
}

Status MemoryFileSystem::StageBlockWrite(Inode& inode, uint64_t block_index,
                                         uint64_t offset_in_block,
                                         std::span<const uint8_t> data) {
  const uint64_t bs = block_bytes();
  assert(offset_in_block + data.size() <= bs);
  const BlockKey key{inode.id, block_index};
  ResidencyManager& res = storage_.residency();
  const SimTime now = storage_.flash_store().device().clock().now();
  res.TouchWrite(key, now);

  if (offset_in_block == 0 && data.size() == bs) {
    // Whole-block write: no need to know the old contents. Any clean-cached
    // copy is stale the moment the block dirties.
    res.InvalidateClean(key);
    return buffer_.Put(key, data, now, tenant_);
  }

  std::vector<uint8_t> staging(bs, 0);
  const int64_t slot = block_index < inode.flash_blocks.size()
                           ? inode.flash_blocks[block_index]
                           : -1;
  const Residency where = res.Resolve(key, slot);
  CheckResolve(where, key, slot);
  switch (where) {
    case Residency::kDirty:
      SSMC_RETURN_IF_ERROR(buffer_.Get(key, staging));
      break;
    case Residency::kClean:
      // The promoted copy doubles as a DRAM-speed copy-on-write source.
      SSMC_RETURN_IF_ERROR(res.ReadClean(key, 0, staging));
      break;
    case Residency::kNvm:
      // NVM-speed copy-on-write source; still cheaper than a flash read.
      SSMC_RETURN_IF_ERROR(res.ReadNvm(key, 0, staging));
      break;
    case Residency::kFlash: {
      // Copy-on-write: "when a write operation occurs, the affected block
      // can be copied to DRAM, where it is left in a write buffer."
      Result<Duration> r = storage_.flash_store().Read(
          static_cast<uint64_t>(slot), staging,
          ForTenant(kForegroundIo, tenant_));
      if (!r.ok()) {
        return r.status();
      }
      stats_.cow_block_copies.Add();
      break;
    }
    case Residency::kHole:
      break;
  }
  std::memcpy(staging.data() + offset_in_block, data.data(), data.size());
  res.InvalidateClean(key);
  return buffer_.Put(key, staging, now, tenant_);
}

Result<uint64_t> MemoryFileSystem::Write(const std::string& path,
                                         uint64_t offset,
                                         std::span<const uint8_t> data) {
  const SimTime obs_t0 =
      obs_ != nullptr ? storage_.flash_store().device().clock().now() : 0;
  Node* node = Lookup(path);
  if (node == nullptr) {
    return NotFoundError(path);
  }
  if (node->is_dir) {
    return FailedPreconditionError(path + " is a directory");
  }
  Inode& inode = node->inode;
  const uint64_t bs = block_bytes();
  if (inode.last_writer != tenant_) {
    // The eventual flush of these blocks is billed to this tenant; the
    // journal must agree after a remount.
    JournalRecord rec;
    rec.type = JournalRecordType::kTenantStamp;
    rec.file_id = inode.id;
    rec.tenant = tenant_;
    SSMC_RETURN_IF_ERROR(JournalAppend(std::move(rec)));
    inode.last_writer = tenant_;
  }

  uint64_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = offset + done;
    const uint64_t block = pos / bs;
    const uint64_t in_block = pos % bs;
    const uint64_t chunk = std::min(bs - in_block, data.size() - done);
    SSMC_RETURN_IF_ERROR(StageBlockWrite(
        inode, block, in_block,
        std::span<const uint8_t>(data.data() + done, chunk)));
    done += chunk;
  }
  if (offset + data.size() > inode.size) {
    JournalRecord rec;
    rec.type = JournalRecordType::kSetSize;
    rec.file_id = inode.id;
    rec.size = offset + data.size();
    SSMC_RETURN_IF_ERROR(JournalAppend(std::move(rec)));
    inode.size = offset + data.size();
  }
  storage_.ChargeMetadataWrite(kInodeBytes);
  stats_.writes.Add();
  stats_.written_bytes.Add(data.size());
  TenantIoStats& lane = stats_.by_tenant.For(tenant_);
  lane.writes.Add();
  lane.written_bytes.Add(data.size());
  if (obs_ != nullptr) {
    const SimTime t1 = storage_.flash_store().device().clock().now();
    obs_->tracer().Span(obs_track_, "fs-write", obs_t0, t1 - obs_t0,
                        {"bytes", data.size()});
  }
  MaybeCompact();
  return static_cast<uint64_t>(data.size());
}

Status MemoryFileSystem::Truncate(const std::string& path, uint64_t size) {
  Node* node = Lookup(path);
  if (node == nullptr) {
    return NotFoundError(path);
  }
  if (node->is_dir) {
    return FailedPreconditionError(path + " is a directory");
  }
  Inode& inode = node->inode;
  {
    JournalRecord rec;
    rec.type = JournalRecordType::kSetSize;
    rec.file_id = inode.id;
    rec.size = size;
    SSMC_RETURN_IF_ERROR(JournalAppend(std::move(rec)));
  }
  const uint64_t bs = block_bytes();
  if (size < inode.size) {
    const uint64_t first_dead = (size + bs - 1) / bs;
    const uint64_t old_blocks = (inode.size + bs - 1) / bs;
    for (uint64_t b = first_dead; b < old_blocks; ++b) {
      ReleaseBlock(inode, b);
    }
    if (inode.flash_blocks.size() > first_dead) {
      inode.flash_blocks.resize(first_dead, -1);
    }
    // Zero the tail of the surviving partial block: if the file is later
    // extended, the cut-off bytes must read back as zeros, not stale data.
    const uint64_t tail = size % bs;
    if (tail != 0) {
      const uint64_t zero_len = std::min(inode.size - size, bs - tail);
      const std::vector<uint8_t> zeros(zero_len, 0);
      SSMC_RETURN_IF_ERROR(StageBlockWrite(inode, size / bs, tail, zeros));
    }
  }
  inode.size = size;
  storage_.ChargeMetadataWrite(kInodeBytes);
  MaybeCompact();
  return Status::Ok();
}

Result<FileInfo> MemoryFileSystem::Stat(const std::string& path) {
  Node* node = Lookup(path);
  if (node == nullptr) {
    return NotFoundError(path);
  }
  FileInfo info;
  info.is_directory = node->is_dir;
  info.size = node->is_dir ? 0 : node->inode.size;
  return info;
}

Status MemoryFileSystem::Rename(const std::string& from,
                                const std::string& to) {
  Node* from_parent = LookupParent(from);
  if (from_parent == nullptr) {
    return NotFoundError(from);
  }
  auto it = from_parent->children.find(BaseNameView(from));
  if (it == from_parent->children.end()) {
    return NotFoundError(from);
  }
  Node* to_parent = LookupParent(to);
  if (to_parent == nullptr) {
    return NotFoundError("no parent directory for " + to);
  }
  const std::string to_base = BaseName(to);
  if (to_parent->children.find(to_base) != to_parent->children.end()) {
    return AlreadyExistsError(to);
  }
  {
    JournalRecord rec;
    rec.type = JournalRecordType::kRename;
    rec.path = from;
    rec.path2 = to;
    SSMC_RETURN_IF_ERROR(JournalAppend(std::move(rec)));
  }
  storage_.ChargeMetadataWrite(2 * kDirEntryBytes);
  to_parent->children.emplace(to_base, std::move(it->second));
  from_parent->children.erase(it);
  MaybeCompact();
  return Status::Ok();
}

Result<std::vector<std::string>> MemoryFileSystem::List(
    const std::string& path) {
  Node* node = Lookup(path);
  if (node == nullptr) {
    return NotFoundError(path);
  }
  if (!node->is_dir) {
    return FailedPreconditionError(path + " is not a directory");
  }
  std::vector<std::string> names;
  names.reserve(node->children.size());
  for (const auto& [name, child] : node->children) {
    storage_.ChargeMetadataRead(kDirEntryBytes);
    names.push_back(name);
  }
  return names;
}

Status MemoryFileSystem::Sync() {
  SSMC_RETURN_IF_ERROR(buffer_.FlushAll());
  // A big drain emits one kExtent per block; this is the natural point to
  // fold the burst into a checkpoint.
  MaybeCompact();
  return Status::Ok();
}

Status MemoryFileSystem::TickFlush(SimTime now) {
  return buffer_.FlushOlderThan(now, options_.flush_age);
}

Status MemoryFileSystem::FlushBlock(const BlockKey& key,
                                    const PayloadRef& data, TenantId tenant) {
  auto it = inode_index_.find(key.file_id);
  if (it == inode_index_.end()) {
    // The file vanished with a dirty block still queued; nothing to persist.
    return InternalError("flush for unlinked inode " +
                         std::to_string(key.file_id));
  }
  Inode& inode = *it->second;
  if (inode.flash_blocks.size() <= key.block_index) {
    inode.flash_blocks.resize(key.block_index + 1, -1);
  }
  int64_t& slot = inode.flash_blocks[key.block_index];
  if (slot < 0) {
    Result<uint64_t> block = storage_.AllocateFlashBlock();
    if (!block.ok()) {
      return block.status();
    }
    slot = static_cast<int64_t>(block.value());
  }
  // This is the write buffer draining: flush-class traffic, never cleaner,
  // never foreground (whether it blocks still follows the store's
  // background_writes mode). The residency manager picks the write stream:
  // kAggressive routes heat-cold blocks onto the relocation (cold-bank)
  // stream; every other policy flushes kUser exactly as before.
  const WriteStream stream = storage_.residency().FlushStream(
      key, storage_.flash_store().device().clock().now());
  // Zero-copy drain: the store programs the buffer's own extent into flash
  // (one more ref on it), so the flush moves no payload bytes.
  Result<Duration> written = storage_.flash_store().WriteRef(
      static_cast<uint64_t>(slot), data, stream, IoPriority::kFlush, tenant);
  if (!written.ok()) {
    return written.status();
  }
  // Record AFTER the data program: a durable kExtent implies the block it
  // names holds the flushed bytes. On append failure the flush reports
  // failure, the buffer keeps the block dirty, and the retry re-writes the
  // same slot and re-emits the record.
  JournalRecord rec;
  rec.type = JournalRecordType::kExtent;
  rec.file_id = key.file_id;
  rec.size = key.block_index;
  rec.flash_block = static_cast<uint64_t>(slot);
  rec.tenant = tenant;
  return JournalAppend(std::move(rec));
}

Result<uint64_t> MemoryFileSystem::FileId(const std::string& path) {
  Node* node = Lookup(path);
  if (node == nullptr || node->is_dir) {
    return NotFoundError(path);
  }
  return node->inode.id;
}

// --- Metadata checkpointing ------------------------------------------------

namespace {

constexpr uint64_t kCheckpointMagic = 0x53534D43434B5031ULL;  // "SSMCCKP1"
constexpr uint64_t kNoBlock = ~uint64_t{0};

void AppendU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
}

void AppendU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

// Bounds-checked little-endian reader over a blob.
class BlobReader {
 public:
  explicit BlobReader(std::span<const uint8_t> data) : data_(data) {}

  bool ReadU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 8;
    return true;
  }
  bool ReadU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) {
      return false;
    }
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += 4;
    return true;
  }
  bool ReadU16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) {
      return false;
    }
    *v = static_cast<uint16_t>(data_[pos_] |
                               (static_cast<uint16_t>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }
  bool ReadU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) {
      return false;
    }
    *v = data_[pos_++];
    return true;
  }
  bool ReadString(size_t n, std::string* out) {
    if (pos_ + n > data_.size()) {
      return false;
    }
    out->assign(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return true;
  }
  bool AtEnd() const { return pos_ >= data_.size(); }

 private:
  std::span<const uint8_t> data_;
  size_t pos_ = 0;
};

}  // namespace

void MemoryFileSystem::SerializeTree(const Node& node, const std::string& path,
                                     std::vector<uint8_t>& out) const {
  if (&node != root_.get()) {
    AppendU16(out, static_cast<uint16_t>(path.size()));
    out.insert(out.end(), path.begin(), path.end());
    out.push_back(node.is_dir ? 1 : 0);
    if (!node.is_dir) {
      AppendU64(out, node.inode.size);
      AppendU64(out, node.inode.flash_blocks.size());
      for (const int64_t block : node.inode.flash_blocks) {
        AppendU64(out, static_cast<uint64_t>(block));
      }
    }
  }
  if (node.is_dir) {
    for (const auto& [name, child] : node.children) {
      SerializeTree(*child, path == "/" ? "/" + name : path + "/" + name, out);
    }
  }
}

// --- Dense snapshot (journal checkpoints) ----------------------------------
// Layout: u64 next_inode_id, u64 node_count, then one preorder record per
// node: u32 parent_index (0 = root; nodes are numbered 1.. in emission
// order), u8 is_dir, u16 name_len + basename, and for files u64 inode id,
// u64 size, u16 last_writer, u64 block count, u64 per block (int64 cast —
// ~0 encodes the -1 hole). Parent indices make deserialization straight
// array indexing: no per-record path splitting or tree walks.

uint32_t MemoryFileSystem::SerializeDenseChildren(
    const Node& dir, uint32_t dir_index, uint32_t next_index, uint64_t* count,
    std::vector<uint8_t>& out) const {
  for (const auto& [name, child] : dir.children) {
    const uint32_t my_index = next_index++;
    AppendU32(out, dir_index);
    out.push_back(child->is_dir ? 1 : 0);
    AppendU16(out, static_cast<uint16_t>(name.size()));
    out.insert(out.end(), name.begin(), name.end());
    if (!child->is_dir) {
      AppendU64(out, child->inode.id);
      AppendU64(out, child->inode.size);
      AppendU16(out, child->inode.last_writer);
      AppendU64(out, child->inode.flash_blocks.size());
      for (const int64_t block : child->inode.flash_blocks) {
        AppendU64(out, static_cast<uint64_t>(block));
      }
    }
    ++*count;
    if (child->is_dir) {
      next_index =
          SerializeDenseChildren(*child, my_index, next_index, count, out);
    }
  }
  return next_index;
}

void MemoryFileSystem::SerializeDense(std::vector<uint8_t>& out) const {
  AppendU64(out, next_inode_id_);
  const size_t count_at = out.size();
  AppendU64(out, 0);  // Node count, patched below.
  uint64_t count = 0;
  (void)SerializeDenseChildren(*root_, 0, 1, &count, out);
  for (int i = 0; i < 8; ++i) {
    out[count_at + i] = static_cast<uint8_t>(count >> (8 * i));
  }
}

void MemoryFileSystem::ReleaseCheckpointBlocks(std::vector<uint64_t> blocks) {
  for (const uint64_t block : blocks) {
    // Skip blocks this manager does not hold: after a crash recovery the
    // fresh StorageManager never re-reserved them (or a previous release
    // already returned them), and freeing would fail closed.
    if (!storage_.IsFlashBlockUsed(block)) {
      continue;
    }
    (void)storage_.FreeFlashBlock(block);
  }
}

void MemoryFileSystem::ReleaseOldCheckpoint() {
  // Detach the list before touching the allocator so a re-entrant call (a
  // recovery path replacing state mid-release) sees an empty list instead
  // of double-freeing.
  ReleaseCheckpointBlocks(std::exchange(checkpoint_blocks_, {}));
}

Status MemoryFileSystem::CheckpointMetadata() {
  if (options_.journal != nullptr) {
    const SimTime j0 = storage_.flash_store().device().clock().now();
    std::vector<uint8_t> dense;
    SerializeDense(dense);
    const uint64_t dense_bytes = dense.size();
    SSMC_RETURN_IF_ERROR(options_.journal->WriteCheckpoint(dense));
    last_checkpoint_at_ = j0;
    if (obs_ != nullptr) {
      const SimTime t1 = storage_.flash_store().device().clock().now();
      obs_->tracer().Span(obs_track_, "journal-checkpoint", j0, t1 - j0,
                          {"bytes", dense_bytes});
    }
    if (!options_.journal_oracle) {
      return Status::Ok();
    }
    // Oracle mode: fall through and also take the legacy block-0 checkpoint
    // so both recovery paths stay comparable.
  }
  const uint64_t bs = block_bytes();
  const SimTime now = storage_.flash_store().device().clock().now();

  // 1. Serialize the namespace.
  std::vector<uint8_t> blob;
  SerializeTree(*root_, "/", blob);
  const uint64_t blob_size = blob.size();
  blob.resize((blob.size() + bs - 1) / bs * bs, 0);

  // 2. Write the data blocks into freshly allocated flash blocks.
  std::vector<uint64_t> new_blocks;
  auto fail_cleanup = [&](const Status& status) {
    for (const uint64_t block : new_blocks) {
      (void)storage_.FreeFlashBlock(block);
    }
    return status;
  };
  std::vector<uint64_t> data_ids;
  for (uint64_t off = 0; off < blob.size(); off += bs) {
    Result<uint64_t> block = storage_.AllocateFlashBlock();
    if (!block.ok()) {
      return fail_cleanup(block.status());
    }
    new_blocks.push_back(block.value());
    data_ids.push_back(block.value());
    Result<Duration> wrote = storage_.flash_store().Write(
        block.value(), std::span<const uint8_t>(blob.data() + off, bs),
        WriteStream::kRelocation);
    if (!wrote.ok()) {
      return fail_cleanup(wrote.status());
    }
  }

  // 3. Build the index chain. Every index block (including the fixed
  // superblock) holds: magic, checkpoint time, blob size, total data
  // blocks, ids-in-this-block, next-index-block, then the ids.
  const uint64_t ids_per_index = (bs - 48) / 8;
  // Chain blocks after the first are allocated; write them back to front so
  // each knows its successor.
  std::vector<std::pair<uint64_t, std::pair<uint64_t, uint64_t>>> chain;
  for (uint64_t start = ids_per_index; start < data_ids.size();
       start += ids_per_index) {
    Result<uint64_t> block = storage_.AllocateFlashBlock();
    if (!block.ok()) {
      return fail_cleanup(block.status());
    }
    new_blocks.push_back(block.value());
    chain.emplace_back(
        block.value(),
        std::make_pair(start,
                       std::min<uint64_t>(start + ids_per_index,
                                          data_ids.size())));
  }
  auto write_index = [&](uint64_t block, uint64_t id_begin, uint64_t id_end,
                         uint64_t next) -> Status {
    std::vector<uint8_t> index;
    index.reserve(bs);
    AppendU64(index, kCheckpointMagic);
    AppendU64(index, static_cast<uint64_t>(now));
    AppendU64(index, blob_size);
    AppendU64(index, data_ids.size());
    AppendU64(index, id_end - id_begin);
    AppendU64(index, next);
    for (uint64_t i = id_begin; i < id_end; ++i) {
      AppendU64(index, data_ids[i]);
    }
    index.resize(bs, 0);
    Result<Duration> wrote = storage_.flash_store().Write(
        block, index, WriteStream::kRelocation);
    return wrote.ok() ? Status::Ok() : wrote.status();
  };
  uint64_t next = kNoBlock;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    SSMC_RETURN_IF_ERROR(
        write_index(it->first, it->second.first, it->second.second, next));
    next = it->first;
  }
  // 4. The superblock goes last: until it lands, the old checkpoint is the
  // valid one (FlashStore rewrites it out of place).
  SSMC_RETURN_IF_ERROR(write_index(
      kSuperblock, 0, std::min<uint64_t>(ids_per_index, data_ids.size()),
      next));

  // 5. Retire the previous checkpoint's blocks — installing the new list
  // first, so the fs never points at freed ids if the release is
  // interrupted by recovery.
  std::vector<uint64_t> old_blocks =
      std::exchange(checkpoint_blocks_, std::move(new_blocks));
  ReleaseCheckpointBlocks(std::move(old_blocks));
  last_checkpoint_at_ = now;
  if (obs_ != nullptr) {
    const SimTime t1 = storage_.flash_store().device().clock().now();
    obs_->tracer().Span(obs_track_, "checkpoint", now, t1 - now,
                        {"blocks", data_ids.size()}, {"bytes", blob_size});
  }
  return Status::Ok();
}

Result<std::unique_ptr<MemoryFileSystem>>
MemoryFileSystem::RecoverFromCheckpoint(StorageManager& storage,
                                        MemoryFsOptions options,
                                        RecoveryReport* report) {
  auto fs = std::make_unique<MemoryFileSystem>(storage, options);
  FlashStore& store = storage.flash_store();
  const uint64_t bs = store.block_bytes();

  // Walk the index chain from the fixed superblock.
  std::vector<uint64_t> data_ids;
  uint64_t blob_size = 0;
  uint64_t total_data_blocks = 0;
  SimTime checkpoint_time = 0;
  uint64_t index_block = kSuperblock;
  while (index_block != kNoBlock) {
    std::vector<uint8_t> raw(bs);
    Result<Duration> read = store.Read(index_block, raw);
    if (!read.ok()) {
      return FailedPreconditionError("no metadata checkpoint found: " +
                                     read.status().message());
    }
    if (index_block != kSuperblock) {
      SSMC_RETURN_IF_ERROR(storage.ReserveFlashBlock(index_block));
      fs->checkpoint_blocks_.push_back(index_block);
    }
    BlobReader reader(raw);
    uint64_t magic = 0;
    uint64_t time = 0;
    uint64_t count = 0;
    uint64_t next = 0;
    if (!reader.ReadU64(&magic) || magic != kCheckpointMagic) {
      return DataLossError("checkpoint superblock is corrupt");
    }
    if (!reader.ReadU64(&time) || !reader.ReadU64(&blob_size) ||
        !reader.ReadU64(&total_data_blocks) || !reader.ReadU64(&count) ||
        !reader.ReadU64(&next)) {
      return DataLossError("checkpoint index header is truncated");
    }
    checkpoint_time = static_cast<SimTime>(time);
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t id = 0;
      if (!reader.ReadU64(&id)) {
        return DataLossError("checkpoint index is truncated");
      }
      data_ids.push_back(id);
    }
    index_block = next;
  }
  if (data_ids.size() != total_data_blocks) {
    return DataLossError("checkpoint index is incomplete");
  }

  // Read the blob.
  std::vector<uint8_t> blob;
  blob.reserve(data_ids.size() * bs);
  std::vector<uint8_t> chunk(bs);
  for (const uint64_t id : data_ids) {
    Result<Duration> read = store.Read(id, chunk);
    if (!read.ok()) {
      return DataLossError("checkpoint data block unreadable: " +
                           read.status().message());
    }
    SSMC_RETURN_IF_ERROR(storage.ReserveFlashBlock(id));
    fs->checkpoint_blocks_.push_back(id);
    blob.insert(blob.end(), chunk.begin(), chunk.end());
  }
  if (blob_size > blob.size()) {
    return DataLossError("checkpoint blob is truncated");
  }
  blob.resize(blob_size);

  // Rebuild the tree. Records are depth-first, parents before children.
  RecoveryReport result;
  BlobReader reader(blob);
  while (!reader.AtEnd()) {
    uint16_t path_len = 0;
    std::string path;
    uint8_t is_dir = 0;
    if (!reader.ReadU16(&path_len) || !reader.ReadString(path_len, &path) ||
        !reader.ReadU8(&is_dir)) {
      return DataLossError("checkpoint record is malformed");
    }
    if (is_dir != 0) {
      SSMC_RETURN_IF_ERROR(fs->Mkdir(path));
      result.directories_recovered += 1;
      continue;
    }
    uint64_t size = 0;
    uint64_t nblocks = 0;
    if (!reader.ReadU64(&size) || !reader.ReadU64(&nblocks)) {
      return DataLossError("checkpoint record is malformed");
    }
    SSMC_RETURN_IF_ERROR(fs->Create(path));
    Node* node = fs->Lookup(path);
    assert(node != nullptr && !node->is_dir);
    node->inode.size = size;
    node->inode.flash_blocks.reserve(nblocks);
    for (uint64_t i = 0; i < nblocks; ++i) {
      uint64_t raw_block = 0;
      if (!reader.ReadU64(&raw_block)) {
        return DataLossError("checkpoint record is malformed");
      }
      int64_t block = static_cast<int64_t>(raw_block);
      if (block >= 0) {
        // A block freed and reused since the checkpoint is stale: treat it
        // as a hole rather than resurrect someone else's data.
        if (!store.IsMapped(static_cast<uint64_t>(block)) ||
            !storage.ReserveFlashBlock(static_cast<uint64_t>(block)).ok()) {
          block = -1;
        } else {
          result.bytes_recovered += bs;
        }
      }
      node->inode.flash_blocks.push_back(block);
    }
    result.files_recovered += 1;
  }

  fs->last_checkpoint_at_ = checkpoint_time;
  if (report != nullptr) {
    result.checkpoint_age =
        store.device().clock().now() - checkpoint_time;
    *report = result;
  }
  return fs;
}

// --- Journal-based recovery ------------------------------------------------

Status MemoryFileSystem::ReplayRecord(const JournalRecord& record) {
  switch (record.type) {
    case JournalRecordType::kMkdir:
      return Mkdir(record.path);
    case JournalRecordType::kCreate: {
      // Reuse the public path (it never touches the allocator), then pin
      // the journaled inode id over the locally assigned one.
      SSMC_RETURN_IF_ERROR(Create(record.path));
      Node* node = Lookup(record.path);
      assert(node != nullptr && !node->is_dir);
      inode_index_.erase(node->inode.id);
      node->inode.id = record.file_id;
      node->inode.last_writer = record.tenant;
      inode_index_[record.file_id] = &node->inode;
      next_inode_id_ = std::max(next_inode_id_, record.file_id + 1);
      return Status::Ok();
    }
    case JournalRecordType::kUnlink: {
      // Direct removal: the original Unlink already freed the file's flash
      // blocks pre-crash, and some of those ids may since belong to the
      // journal itself — replay must not touch the allocator.
      Node* parent = LookupParent(record.path);
      if (parent == nullptr) {
        return InternalError("journal replay: no parent for unlink " +
                             record.path);
      }
      auto it = parent->children.find(BaseNameView(record.path));
      if (it == parent->children.end() || it->second->is_dir) {
        return InternalError("journal replay: bad unlink target " +
                             record.path);
      }
      inode_index_.erase(it->second->inode.id);
      storage_.ChargeMetadataWrite(kDirEntryBytes + kInodeBytes);
      parent->children.erase(it);
      return Status::Ok();
    }
    case JournalRecordType::kRmdir: {
      Node* parent = LookupParent(record.path);
      if (parent == nullptr) {
        return InternalError("journal replay: no parent for rmdir " +
                             record.path);
      }
      auto it = parent->children.find(BaseNameView(record.path));
      if (it == parent->children.end() || !it->second->is_dir ||
          !it->second->children.empty()) {
        return InternalError("journal replay: bad rmdir target " +
                             record.path);
      }
      storage_.ChargeMetadataWrite(kDirEntryBytes);
      parent->children.erase(it);
      return Status::Ok();
    }
    case JournalRecordType::kRename:
      return Rename(record.path, record.path2);
    case JournalRecordType::kSetSize: {
      auto it = inode_index_.find(record.file_id);
      if (it == inode_index_.end()) {
        return InternalError("journal replay: setsize for unknown inode " +
                             std::to_string(record.file_id));
      }
      Inode& inode = *it->second;
      const uint64_t bs = block_bytes();
      if (record.size < inode.size) {
        // The original truncate freed the dead blocks; here only the map
        // shrinks (see kUnlink for why the allocator stays untouched).
        const uint64_t first_dead = (record.size + bs - 1) / bs;
        if (inode.flash_blocks.size() > first_dead) {
          inode.flash_blocks.resize(first_dead, -1);
        }
      }
      inode.size = record.size;
      storage_.ChargeMetadataWrite(kInodeBytes);
      return Status::Ok();
    }
    case JournalRecordType::kExtent: {
      auto it = inode_index_.find(record.file_id);
      if (it == inode_index_.end()) {
        return InternalError("journal replay: extent for unknown inode " +
                             std::to_string(record.file_id));
      }
      Inode& inode = *it->second;
      const uint64_t index = record.size;
      if (inode.flash_blocks.size() <= index) {
        inode.flash_blocks.resize(index + 1, -1);
      }
      inode.flash_blocks[index] =
          record.flash_block == kNoFlashBlock
              ? -1
              : static_cast<int64_t>(record.flash_block);
      return Status::Ok();
    }
    case JournalRecordType::kTenantStamp: {
      auto it = inode_index_.find(record.file_id);
      if (it == inode_index_.end()) {
        return InternalError("journal replay: stamp for unknown inode " +
                             std::to_string(record.file_id));
      }
      it->second->last_writer = record.tenant;
      return Status::Ok();
    }
    case JournalRecordType::kCheckpoint:
      return Status::Ok();  // Informational marker, nothing to apply.
  }
  return InternalError("journal replay: unknown record type");
}

Result<std::unique_ptr<MemoryFileSystem>> MemoryFileSystem::RecoverFromJournal(
    MetadataJournal& journal, StorageManager& storage, MemoryFsOptions options,
    RecoveryReport* report) {
  Result<MetadataJournal::MountState> mount = journal.Recover();
  if (!mount.ok()) {
    return mount.status();
  }
  options.journal = &journal;
  auto fs = std::make_unique<MemoryFileSystem>(storage, options);
  FlashStore& store = storage.flash_store();
  const uint64_t bs = store.block_bytes();
  fs->replaying_ = true;

  RecoveryReport result;
  // 1. Install the dense checkpoint: array-indexed construction, one pass,
  // no path walks.
  if (!mount.value().checkpoint.empty()) {
    BlobReader reader(mount.value().checkpoint);
    uint64_t next_id = 0;
    uint64_t node_count = 0;
    if (!reader.ReadU64(&next_id) || !reader.ReadU64(&node_count)) {
      return DataLossError("journal checkpoint header is truncated");
    }
    std::vector<Node*> nodes;
    nodes.reserve(node_count + 1);
    nodes.push_back(fs->root_.get());
    for (uint64_t n = 0; n < node_count; ++n) {
      uint32_t parent_index = 0;
      uint8_t is_dir = 0;
      uint16_t name_len = 0;
      std::string name;
      if (!reader.ReadU32(&parent_index) || !reader.ReadU8(&is_dir) ||
          !reader.ReadU16(&name_len) || !reader.ReadString(name_len, &name) ||
          parent_index >= nodes.size() || !nodes[parent_index]->is_dir) {
        return DataLossError("journal checkpoint record is malformed");
      }
      auto node = std::make_unique<Node>();
      node->is_dir = is_dir != 0;
      if (!node->is_dir) {
        uint64_t nblocks = 0;
        uint16_t last_writer = 0;
        if (!reader.ReadU64(&node->inode.id) ||
            !reader.ReadU64(&node->inode.size) ||
            !reader.ReadU16(&last_writer) || !reader.ReadU64(&nblocks)) {
          return DataLossError("journal checkpoint record is malformed");
        }
        node->inode.last_writer = last_writer;
        node->inode.flash_blocks.reserve(nblocks);
        for (uint64_t i = 0; i < nblocks; ++i) {
          uint64_t raw = 0;
          if (!reader.ReadU64(&raw)) {
            return DataLossError("journal checkpoint record is malformed");
          }
          node->inode.flash_blocks.push_back(static_cast<int64_t>(raw));
        }
        fs->inode_index_[node->inode.id] = &node->inode;
      }
      Node* raw_node = node.get();
      nodes[parent_index]->children.emplace(std::move(name), std::move(node));
      nodes.push_back(raw_node);
    }
    fs->next_inode_id_ = next_id;
    // The dense image installs as ONE streaming DRAM write of the snapshot
    // bytes — avoiding a per-node random-access charge is exactly what the
    // dense format is for (the legacy path pays per-path re-creation).
    storage.ChargeMetadataWrite(mount.value().checkpoint.size());
  }

  // 2. Replay the log tail on top of the checkpoint.
  for (const JournalRecord& rec : mount.value().records) {
    SSMC_RETURN_IF_ERROR(fs->ReplayRecord(rec));
    result.journal_records_replayed += 1;
  }
  fs->replaying_ = false;

  // 3. Claim live extents with the fresh allocator. A block unmapped or
  // already taken (reused before the crash, or now journal-owned) is stale:
  // it becomes a hole rather than resurrect someone else's data.
  for (auto& [id, inode_ptr] : fs->inode_index_) {
    for (int64_t& slot : inode_ptr->flash_blocks) {
      if (slot < 0) {
        continue;
      }
      const uint64_t block = static_cast<uint64_t>(slot);
      if (!store.IsMapped(block) || !storage.ReserveFlashBlock(block).ok()) {
        slot = -1;
      } else {
        result.bytes_recovered += bs;
      }
    }
  }

  // Final namespace census (replay may have added or removed nodes).
  std::vector<const Node*> stack = {fs->root_.get()};
  while (!stack.empty()) {
    const Node* n = stack.back();
    stack.pop_back();
    for (const auto& [name, child] : n->children) {
      if (child->is_dir) {
        result.directories_recovered += 1;
        stack.push_back(child.get());
      } else {
        result.files_recovered += 1;
      }
    }
  }

  fs->last_checkpoint_at_ = mount.value().checkpoint_time;
  if (report != nullptr) {
    result.checkpoint_age =
        store.device().clock().now() - mount.value().checkpoint_time;
    *report = result;
  }
  return fs;
}

Result<std::vector<BlockLocation>> MemoryFileSystem::BlockLocations(
    const std::string& path) {
  Node* node = Lookup(path);
  if (node == nullptr || node->is_dir) {
    return NotFoundError(path);
  }
  const Inode& inode = node->inode;
  const uint64_t blocks = (inode.size + block_bytes() - 1) / block_bytes();
  std::vector<BlockLocation> locations(blocks);
  // Clean-cached blocks deliberately report kFlash: the flash copy stays
  // authoritative and the cache page can be demoted at any moment, so the
  // VM must never map it.
  for (uint64_t b = 0; b < blocks; ++b) {
    BlockLocation& loc = locations[b];
    if (buffer_.Contains(BlockKey{inode.id, b})) {
      loc.kind = BlockLocation::Kind::kBuffered;
    } else if (b < inode.flash_blocks.size() && inode.flash_blocks[b] >= 0) {
      loc.kind = BlockLocation::Kind::kFlash;
      loc.flash_block = static_cast<uint64_t>(inode.flash_blocks[b]);
    } else {
      loc.kind = BlockLocation::Kind::kHole;
    }
  }
  return locations;
}

}  // namespace ssmc
