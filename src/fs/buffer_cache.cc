#include "src/fs/buffer_cache.h"

#include <cassert>
#include <cstring>

namespace ssmc {

BufferCache::BufferCache(DiskDevice& disk, uint64_t block_bytes,
                         uint64_t capacity_blocks)
    : disk_(disk),
      block_bytes_(block_bytes),
      capacity_blocks_(capacity_blocks),
      pool_(block_bytes) {
  assert(block_bytes_ > 0 && block_bytes_ % disk_.sector_bytes() == 0);
  assert(capacity_blocks_ > 0);
}

Status BufferCache::WriteBack(uint64_t block, Entry& entry) {
  if (!entry.dirty) {
    return Status::Ok();
  }
  Result<Duration> r = disk_.WriteSectors(
      SectorOfBlock(block),
      std::span<const uint8_t>(entry.data.data(), block_bytes_));
  if (!r.ok()) {
    return r.status();
  }
  entry.dirty = false;
  stats_.writebacks.Add();
  stats_.writeback_bytes.Add(block_bytes_);
  return Status::Ok();
}

Status BufferCache::EvictOne() {
  assert(!lru_.empty());
  const uint64_t victim = lru_.front();
  auto it = entries_.find(victim);
  assert(it != entries_.end());
  SSMC_RETURN_IF_ERROR(WriteBack(victim, it->second));
  lru_.pop_front();
  entries_.erase(it);
  return Status::Ok();
}

Result<BufferCache::Entry*> BufferCache::GetEntry(uint64_t block, bool fill) {
  if (block >= num_blocks()) {
    return OutOfRangeError("cache block past end of disk");
  }
  auto it = entries_.find(block);
  if (it != entries_.end()) {
    stats_.hits.Add();
    lru_.splice(lru_.end(), lru_, it->second.lru_it);
    return &it->second;
  }
  stats_.misses.Add();
  while (entries_.size() >= capacity_blocks_) {
    SSMC_RETURN_IF_ERROR(EvictOne());
  }
  Entry entry;
  entry.data = pool_.Allocate();
  if (fill) {
    Result<Duration> r = disk_.ReadSectors(
        SectorOfBlock(block),
        std::span<uint8_t>(entry.data.MutableData(), block_bytes_));
    if (!r.ok()) {
      return r.status();
    }
  } else {
    std::memset(entry.data.MutableData(), 0, block_bytes_);
  }
  lru_.push_back(block);
  entry.lru_it = std::prev(lru_.end());
  auto [inserted, ok] = entries_.emplace(block, std::move(entry));
  (void)ok;
  return &inserted->second;
}

Status BufferCache::Read(uint64_t block, std::span<uint8_t> out) {
  if (out.size() != block_bytes_) {
    return InvalidArgumentError("cache reads are whole blocks");
  }
  Result<Entry*> entry = GetEntry(block, /*fill=*/true);
  if (!entry.ok()) {
    return entry.status();
  }
  std::memcpy(out.data(), entry.value()->data.data(), block_bytes_);
  stats_.read_bytes.Add(block_bytes_);
  return Status::Ok();
}

Status BufferCache::Write(uint64_t block, std::span<const uint8_t> data) {
  if (data.size() != block_bytes_) {
    return InvalidArgumentError("cache writes are whole blocks");
  }
  // Full overwrite: no need to read the old contents from disk.
  Result<Entry*> entry = GetEntry(block, /*fill=*/false);
  if (!entry.ok()) {
    return entry.status();
  }
  std::memcpy(entry.value()->data.MutableData(), data.data(), block_bytes_);
  entry.value()->dirty = true;
  return Status::Ok();
}

Status BufferCache::WritePartial(uint64_t block, uint64_t offset,
                                 std::span<const uint8_t> data) {
  if (offset + data.size() > block_bytes_) {
    return OutOfRangeError("partial write exceeds block bounds");
  }
  Result<Entry*> entry = GetEntry(block, /*fill=*/true);
  if (!entry.ok()) {
    return entry.status();
  }
  std::memcpy(entry.value()->data.MutableData() + offset, data.data(),
              data.size());
  entry.value()->dirty = true;
  return Status::Ok();
}

Status BufferCache::Sync() {
  for (auto& [block, entry] : entries_) {
    SSMC_RETURN_IF_ERROR(WriteBack(block, entry));
  }
  return Status::Ok();
}

Status BufferCache::DropAll() {
  SSMC_RETURN_IF_ERROR(Sync());
  entries_.clear();
  lru_.clear();
  return Status::Ok();
}

Status BufferCache::FlushBlock(uint64_t block) {
  auto it = entries_.find(block);
  if (it == entries_.end()) {
    return Status::Ok();
  }
  return WriteBack(block, it->second);
}

void BufferCache::Invalidate(uint64_t block) {
  auto it = entries_.find(block);
  if (it == entries_.end()) {
    return;
  }
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

}  // namespace ssmc
