// LogFileSystem — a Sprite-LFS-style log-structured file system over a
// magnetic disk (Rosenblum & Ousterhout [11], which the paper cites as the
// source of its garbage-collection techniques).
//
// Included as the *strong* disk baseline for experiment E3: LFS converts
// the disk FS's scattered writes into large sequential segment writes, which
// is the best a mechanical disk can do — and still loses to the memory-
// resident organization, because reads of cold data keep paying seeks. It
// also grounds E7: the flash store's cleaner is exactly this cleaner with
// erase blocks instead of segments.
//
// Structure (simplified from Sprite LFS, as its authors did for analysis):
//  * all metadata (directory tree, inodes, the inode map, segment usage
//    table) is cached in memory, as Sprite LFS aggressively did; data is
//    what pays disk I/O;
//  * dirty blocks accumulate in a one-segment RAM buffer; when it fills,
//    the whole segment is written with a single sequential transfer;
//  * the segment usage table tracks live blocks per segment; fully-dead
//    segments return to the free list immediately;
//  * a cleaner compacts low-utilization segments (lowest-usage-first,
//    liveness checked against the owning inode's block pointer) when the
//    free-segment pool runs low.

#ifndef SSMC_SRC_FS_LOG_FS_H_
#define SSMC_SRC_FS_LOG_FS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/device/disk_device.h"
#include "src/fs/file_system.h"
#include "src/sim/stats.h"
#include "src/support/status.h"

namespace ssmc {

struct LogFsOptions {
  uint64_t block_bytes = 4096;
  uint64_t segment_blocks = 64;  // 256 KiB segments at 4 KiB blocks.
  // Cleaning starts when the free-segment pool drops to this level.
  uint64_t free_segment_low_water = 2;
};

class LogFileSystem : public FileSystem {
 public:
  LogFileSystem(DiskDevice& disk, LogFsOptions options);
  ~LogFileSystem() override;

  std::string name() const override { return "log-fs"; }

  Status Create(const std::string& path) override;
  Status Unlink(const std::string& path) override;
  Status Mkdir(const std::string& path) override;
  Status Rmdir(const std::string& path) override;
  Result<uint64_t> Read(const std::string& path, uint64_t offset,
                        std::span<uint8_t> out) override;
  Result<uint64_t> Write(const std::string& path, uint64_t offset,
                         std::span<const uint8_t> data) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Result<FileInfo> Stat(const std::string& path) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Result<std::vector<std::string>> List(const std::string& path) override;
  Status Sync() override;

  struct Stats {
    Counter segment_writes;      // Whole segments written sequentially.
    Counter blocks_written;      // Blocks reaching disk (incl. cleaning).
    Counter cleaner_runs;        // Victim segments compacted.
    Counter cleaner_live_blocks; // Live blocks copied by the cleaner.
    Counter reads_from_buffer;   // Block reads served by the RAM buffer.
    Counter reads_from_disk;
  };
  const Stats& stats() const { return stats_; }
  uint64_t free_segments() const { return free_segments_.size(); }
  // Blocks written by callers / blocks written to disk: the LFS write cost.
  double WriteAmplification() const;

 private:
  static constexpr int64_t kHole = -1;

  struct Inode {
    uint64_t id = 0;
    uint64_t size = 0;
    // Block index -> disk block number or kHole. Blocks overridden by the
    // dirty buffer are looked up there first.
    std::vector<int64_t> blocks;
  };

  struct Node {
    bool is_dir = false;
    // std::less<> enables lookups by string_view without a key copy.
    std::map<std::string, std::unique_ptr<Node>, std::less<>> children;
    Inode inode;
  };

  // One log slot: which file block occupies it (for liveness checks).
  struct SlotOwner {
    uint64_t ino = 0;
    uint64_t block_index = 0;
  };

  using DirtyKey = std::pair<uint64_t, uint64_t>;  // (ino, block index)

  Node* Lookup(std::string_view path);
  Node* LookupParent(std::string_view path);

  uint64_t SegmentOfBlock(uint64_t disk_block) const {
    return disk_block / options_.segment_blocks;
  }
  uint64_t SectorOfBlock(uint64_t disk_block) const {
    return disk_block * (options_.block_bytes / disk_.sector_bytes());
  }

  // Drops one reference to a disk block (its segment's usage falls; a fully
  // dead segment returns to the free pool).
  void KillBlock(int64_t disk_block);

  // Stages a dirty block; flushes a full segment when the buffer fills.
  Status PutDirty(Inode& inode, uint64_t block_index,
                  std::vector<uint8_t> data);

  // Writes the dirty buffer out as (part of) a segment.
  Status FlushDirtyBuffer();

  // Ensures a free segment is available, running the cleaner if needed.
  Result<uint64_t> TakeFreeSegment();

  // Compacts the lowest-utilization segment. Returns false if none.
  Result<bool> CleanOne();

  // Releases every block of the file (dirty + on-disk).
  void ReleaseFile(Inode& inode);

  DiskDevice& disk_;
  LogFsOptions options_;
  std::unique_ptr<Node> root_;
  std::unordered_map<uint64_t, Inode*> inode_index_;
  uint64_t next_inode_id_ = 1;

  uint64_t num_segments_;
  std::vector<uint32_t> usage_;                 // Live blocks per segment.
  std::vector<std::vector<SlotOwner>> summary_; // Per segment slot owners.
  std::vector<uint64_t> free_segments_;
  std::vector<bool> segment_free_;

  std::map<DirtyKey, std::vector<uint8_t>> dirty_;
  bool cleaning_ = false;
  Stats stats_;
  uint64_t user_blocks_written_ = 0;
};

}  // namespace ssmc

#endif  // SSMC_SRC_FS_LOG_FS_H_
