#include "src/fs/disk_fs.h"

#include <array>

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/fs/path.h"

namespace ssmc {

namespace {
constexpr uint32_t kRootIno = 1;
constexpr uint32_t kModeFree = 0;
constexpr uint32_t kModeFile = 1;
constexpr uint32_t kModeDir = 2;
constexpr char kMagic[8] = {'s', 's', 'm', 'c', 'd', 'f', 's', '1'};

uint64_t DivCeil(uint64_t a, uint64_t b) { return (a + b - 1) / b; }
}  // namespace

DiskFileSystem::DiskFileSystem(DiskDevice& disk, DiskFsOptions options)
    : disk_(disk),
      options_(options),
      cache_(disk, options.block_bytes, options.cache_blocks) {
  const uint64_t bits_per_block = options_.block_bytes * 8;
  layout_.total_blocks = disk_.capacity_bytes() / options_.block_bytes;
  layout_.inode_bitmap_start = 1;
  layout_.inode_bitmap_blocks = DivCeil(options_.inode_count, bits_per_block);
  layout_.data_bitmap_start =
      layout_.inode_bitmap_start + layout_.inode_bitmap_blocks;
  layout_.data_bitmap_blocks = DivCeil(layout_.total_blocks, bits_per_block);
  layout_.inode_table_start =
      layout_.data_bitmap_start + layout_.data_bitmap_blocks;
  layout_.inode_table_blocks =
      DivCeil(options_.inode_count * kInodeBytes, options_.block_bytes);
  layout_.data_start = layout_.inode_table_start + layout_.inode_table_blocks;
  assert(layout_.data_start < layout_.total_blocks && "disk too small");
  Mkfs();
}

void DiskFileSystem::Mkfs() {
  // Superblock.
  std::vector<uint8_t> block(options_.block_bytes, 0);
  std::memcpy(block.data(), kMagic, sizeof(kMagic));
  std::memcpy(block.data() + 8, &layout_.total_blocks, 8);
  (void)cache_.Write(0, block);

  // Mark all metadata blocks (and block 0) used in the data bitmap.
  for (uint64_t b = 0; b < layout_.data_start; ++b) {
    (void)SetBitmapBit(layout_.data_bitmap_start, b, true);
  }
  // Inode 0 is reserved so 0 can mean "no inode" in directory entries.
  (void)SetBitmapBit(layout_.inode_bitmap_start, 0, true);

  // Root directory.
  (void)SetBitmapBit(layout_.inode_bitmap_start, kRootIno, true);
  DiskInode root;
  root.mode = kModeDir;
  (void)WriteInode(kRootIno, root);
  (void)cache_.Sync();
}

uint64_t DiskFileSystem::GroupOfBlock(uint64_t block) const {
  const uint64_t data_blocks = layout_.total_blocks - layout_.data_start;
  const uint64_t group_size =
      std::max<uint64_t>(1, data_blocks / options_.allocation_groups);
  if (block < layout_.data_start) {
    return 0;
  }
  return std::min(options_.allocation_groups - 1,
                  (block - layout_.data_start) / group_size);
}

// --- Bitmaps --------------------------------------------------------------

Status DiskFileSystem::MetaWrite(uint64_t block, uint64_t offset,
                                 std::span<const uint8_t> data) {
  SSMC_RETURN_IF_ERROR(cache_.WritePartial(block, offset, data));
  if (options_.sync_metadata) {
    return cache_.FlushBlock(block);
  }
  return Status::Ok();
}

Status DiskFileSystem::SetBitmapBit(uint64_t bitmap_start, uint64_t index,
                                    bool value) {
  const uint64_t block = bitmap_start + index / (options_.block_bytes * 8);
  const uint64_t byte = (index / 8) % options_.block_bytes;
  std::vector<uint8_t> data(options_.block_bytes);
  SSMC_RETURN_IF_ERROR(cache_.Read(block, data));
  uint8_t b = data[byte];
  if (value) {
    b |= static_cast<uint8_t>(1u << (index % 8));
  } else {
    b &= static_cast<uint8_t>(~(1u << (index % 8)));
  }
  return MetaWrite(block, byte, std::span<const uint8_t>(&b, 1));
}

Result<bool> DiskFileSystem::GetBitmapBit(uint64_t bitmap_start,
                                          uint64_t index) {
  const uint64_t block = bitmap_start + index / (options_.block_bytes * 8);
  const uint64_t byte = (index / 8) % options_.block_bytes;
  std::vector<uint8_t> data(options_.block_bytes);
  SSMC_RETURN_IF_ERROR(cache_.Read(block, data));
  return (data[byte] >> (index % 8) & 1) != 0;
}

// --- Inodes ---------------------------------------------------------------

Result<DiskFileSystem::DiskInode> DiskFileSystem::ReadInode(uint32_t ino) {
  if (ino == 0 || ino >= options_.inode_count) {
    return OutOfRangeError("bad inode number");
  }
  const uint64_t byte_offset = static_cast<uint64_t>(ino) * kInodeBytes;
  const uint64_t block =
      layout_.inode_table_start + byte_offset / options_.block_bytes;
  const uint64_t offset = byte_offset % options_.block_bytes;
  std::vector<uint8_t> data(options_.block_bytes);
  SSMC_RETURN_IF_ERROR(cache_.Read(block, data));
  DiskInode inode;
  std::memcpy(&inode, data.data() + offset, sizeof(inode));
  return inode;
}

Status DiskFileSystem::WriteInode(uint32_t ino, const DiskInode& inode) {
  if (ino == 0 || ino >= options_.inode_count) {
    return OutOfRangeError("bad inode number");
  }
  const uint64_t byte_offset = static_cast<uint64_t>(ino) * kInodeBytes;
  const uint64_t block =
      layout_.inode_table_start + byte_offset / options_.block_bytes;
  const uint64_t offset = byte_offset % options_.block_bytes;
  return MetaWrite(block, offset,
                   std::span<const uint8_t>(
                       reinterpret_cast<const uint8_t*>(&inode),
                       sizeof(inode)));
}

Result<uint32_t> DiskFileSystem::AllocateInode(uint32_t mode) {
  for (uint32_t ino = 1; ino < options_.inode_count; ++ino) {
    Result<bool> used = GetBitmapBit(layout_.inode_bitmap_start, ino);
    if (!used.ok()) {
      return used.status();
    }
    if (!used.value()) {
      SSMC_RETURN_IF_ERROR(SetBitmapBit(layout_.inode_bitmap_start, ino, true));
      DiskInode inode;
      inode.mode = mode;
      SSMC_RETURN_IF_ERROR(WriteInode(ino, inode));
      return ino;
    }
  }
  return NoSpaceError("out of inodes");
}

Status DiskFileSystem::FreeInode(uint32_t ino) {
  DiskInode empty;
  SSMC_RETURN_IF_ERROR(WriteInode(ino, empty));
  return SetBitmapBit(layout_.inode_bitmap_start, ino, false);
}

// --- Data blocks ------------------------------------------------------------

Result<uint32_t> DiskFileSystem::AllocateDataBlock(uint32_t hint_block) {
  const uint64_t data_blocks = layout_.total_blocks - layout_.data_start;
  const uint64_t group_size =
      std::max<uint64_t>(1, data_blocks / options_.allocation_groups);
  const uint64_t start_group = hint_block != 0 ? GroupOfBlock(hint_block) : 0;
  const uint64_t start = layout_.data_start + start_group * group_size;

  // Scan forward from the preferred group, wrapping around.
  for (uint64_t i = 0; i < data_blocks; ++i) {
    uint64_t candidate = start + i;
    if (candidate >= layout_.total_blocks) {
      candidate = layout_.data_start + (candidate - layout_.total_blocks);
    }
    Result<bool> used = GetBitmapBit(layout_.data_bitmap_start, candidate);
    if (!used.ok()) {
      return used.status();
    }
    if (!used.value()) {
      SSMC_RETURN_IF_ERROR(
          SetBitmapBit(layout_.data_bitmap_start, candidate, true));
      return static_cast<uint32_t>(candidate);
    }
  }
  return NoSpaceError("disk full");
}

Status DiskFileSystem::FreeDataBlock(uint32_t block) {
  cache_.Invalidate(block);
  return SetBitmapBit(layout_.data_bitmap_start, block, false);
}

// --- File block mapping ------------------------------------------------------

Result<uint32_t> DiskFileSystem::GetFileBlock(uint32_t ino, DiskInode& inode,
                                              uint64_t index, bool allocate) {
  const uint32_t ppb = PointersPerBlock();
  const uint32_t hint = inode.direct[0] != 0
                            ? inode.direct[0]
                            : static_cast<uint32_t>(
                                  layout_.data_start +
                                  (ino % options_.allocation_groups) *
                                      ((layout_.total_blocks -
                                        layout_.data_start) /
                                       options_.allocation_groups));

  // Allocates a fresh, zeroed data block. Zeroing matters: the block may
  // have been freed from another file, and its stale on-disk contents must
  // never leak into the holes of its new owner.
  auto alloc_data = [&]() -> Result<uint32_t> {
    Result<uint32_t> fresh = AllocateDataBlock(hint);
    if (!fresh.ok()) {
      return fresh.status();
    }
    std::vector<uint8_t> zeros(options_.block_bytes, 0);
    SSMC_RETURN_IF_ERROR(cache_.Write(fresh.value(), zeros));
    return fresh.value();
  };

  // Reads (or allocates) the pointer at `slot` inside indirect block `blk`.
  auto pointer_at = [&](uint32_t blk, uint32_t slot,
                        bool alloc) -> Result<uint32_t> {
    std::vector<uint8_t> data(options_.block_bytes);
    SSMC_RETURN_IF_ERROR(cache_.Read(blk, data));
    stats_.indirect_fetches.Add();
    uint32_t ptr;
    std::memcpy(&ptr, data.data() + slot * 4, 4);
    if (ptr == 0 && alloc) {
      Result<uint32_t> fresh = alloc_data();
      if (!fresh.ok()) {
        return fresh.status();
      }
      ptr = fresh.value();
      SSMC_RETURN_IF_ERROR(MetaWrite(
          blk, slot * 4,
          std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&ptr),
                                   4)));
    }
    return ptr;
  };

  // Allocates a zero-filled indirect block.
  auto alloc_indirect = [&]() -> Result<uint32_t> {
    Result<uint32_t> blk = AllocateDataBlock(hint);
    if (!blk.ok()) {
      return blk.status();
    }
    std::vector<uint8_t> zeros(options_.block_bytes, 0);
    SSMC_RETURN_IF_ERROR(cache_.Write(blk.value(), zeros));
    return blk.value();
  };

  if (index < kDirect) {
    if (inode.direct[index] == 0 && allocate) {
      Result<uint32_t> fresh = alloc_data();
      if (!fresh.ok()) {
        return fresh.status();
      }
      inode.direct[index] = fresh.value();
    }
    return inode.direct[index];
  }
  index -= kDirect;

  if (index < ppb) {
    if (inode.indirect == 0) {
      if (!allocate) {
        return uint32_t{0};
      }
      Result<uint32_t> blk = alloc_indirect();
      if (!blk.ok()) {
        return blk.status();
      }
      inode.indirect = blk.value();
    }
    return pointer_at(inode.indirect, static_cast<uint32_t>(index), allocate);
  }
  index -= ppb;

  if (index < static_cast<uint64_t>(ppb) * ppb) {
    if (inode.double_indirect == 0) {
      if (!allocate) {
        return uint32_t{0};
      }
      Result<uint32_t> blk = alloc_indirect();
      if (!blk.ok()) {
        return blk.status();
      }
      inode.double_indirect = blk.value();
    }
    Result<uint32_t> level1 = pointer_at(
        inode.double_indirect, static_cast<uint32_t>(index / ppb), false);
    if (!level1.ok()) {
      return level1.status();
    }
    uint32_t l1 = level1.value();
    if (l1 == 0) {
      if (!allocate) {
        return uint32_t{0};
      }
      Result<uint32_t> blk = alloc_indirect();
      if (!blk.ok()) {
        return blk.status();
      }
      l1 = blk.value();
      const uint32_t slot = static_cast<uint32_t>(index / ppb);
      SSMC_RETURN_IF_ERROR(MetaWrite(
          inode.double_indirect, slot * 4,
          std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(&l1), 4)));
    }
    return pointer_at(l1, static_cast<uint32_t>(index % ppb), allocate);
  }
  return OutOfRangeError("file exceeds maximum size");
}

Status DiskFileSystem::FreeFileBlocks(DiskInode& inode,
                                      uint64_t first_dead_index) {
  const uint32_t ppb = PointersPerBlock();
  const uint64_t total =
      DivCeil(inode.size, options_.block_bytes);

  // Data blocks.
  for (uint64_t i = first_dead_index; i < total; ++i) {
    Result<uint32_t> blk = GetFileBlock(0, inode, i, /*allocate=*/false);
    if (!blk.ok()) {
      return blk.status();
    }
    if (blk.value() != 0) {
      SSMC_RETURN_IF_ERROR(FreeDataBlock(blk.value()));
    }
  }
  for (uint64_t i = first_dead_index; i < std::min<uint64_t>(total, kDirect);
       ++i) {
    inode.direct[i] = 0;
  }

  // Indirect structures that are now entirely dead.
  if (inode.indirect != 0 && first_dead_index <= kDirect) {
    SSMC_RETURN_IF_ERROR(FreeDataBlock(inode.indirect));
    inode.indirect = 0;
  }
  if (inode.double_indirect != 0 &&
      first_dead_index <= kDirect + static_cast<uint64_t>(ppb)) {
    // Free the level-1 blocks first.
    std::vector<uint8_t> data(options_.block_bytes);
    SSMC_RETURN_IF_ERROR(cache_.Read(inode.double_indirect, data));
    for (uint32_t slot = 0; slot < ppb; ++slot) {
      uint32_t ptr;
      std::memcpy(&ptr, data.data() + slot * 4, 4);
      if (ptr != 0) {
        SSMC_RETURN_IF_ERROR(FreeDataBlock(ptr));
      }
    }
    SSMC_RETURN_IF_ERROR(FreeDataBlock(inode.double_indirect));
    inode.double_indirect = 0;
  }
  return Status::Ok();
}

// --- Read / write -----------------------------------------------------------

Result<uint64_t> DiskFileSystem::ReadAt(uint32_t ino, DiskInode& inode,
                                        uint64_t offset,
                                        std::span<uint8_t> out) {
  if (offset >= inode.size) {
    return uint64_t{0};
  }
  const uint64_t bs = options_.block_bytes;
  const uint64_t n = std::min<uint64_t>(out.size(), inode.size - offset);
  std::vector<uint8_t> staging(bs);
  uint64_t done = 0;
  while (done < n) {
    const uint64_t pos = offset + done;
    const uint64_t index = pos / bs;
    const uint64_t in_block = pos % bs;
    const uint64_t chunk = std::min(bs - in_block, n - done);
    Result<uint32_t> blk = GetFileBlock(ino, inode, index, /*allocate=*/false);
    if (!blk.ok()) {
      return blk.status();
    }
    if (blk.value() == 0) {
      std::memset(out.data() + done, 0, chunk);
    } else {
      SSMC_RETURN_IF_ERROR(cache_.Read(blk.value(), staging));
      std::memcpy(out.data() + done, staging.data() + in_block, chunk);
    }
    done += chunk;
  }
  return n;
}

Result<uint64_t> DiskFileSystem::WriteAt(uint32_t ino, DiskInode& inode,
                                         uint64_t offset,
                                         std::span<const uint8_t> data) {
  const uint64_t bs = options_.block_bytes;
  uint64_t done = 0;
  while (done < data.size()) {
    const uint64_t pos = offset + done;
    const uint64_t index = pos / bs;
    const uint64_t in_block = pos % bs;
    const uint64_t chunk = std::min(bs - in_block, data.size() - done);
    Result<uint32_t> blk = GetFileBlock(ino, inode, index, /*allocate=*/true);
    if (!blk.ok()) {
      return blk.status();
    }
    const std::span<const uint8_t> piece(data.data() + done, chunk);
    if (chunk == bs) {
      SSMC_RETURN_IF_ERROR(cache_.Write(blk.value(), piece));
    } else {
      SSMC_RETURN_IF_ERROR(cache_.WritePartial(blk.value(), in_block, piece));
    }
    done += chunk;
  }
  if (offset + data.size() > inode.size) {
    inode.size = offset + data.size();
  }
  return static_cast<uint64_t>(data.size());
}

// --- Directories --------------------------------------------------------------

Result<uint32_t> DiskFileSystem::DirLookup(uint32_t dir_ino,
                                           std::string_view name) {
  Result<DiskInode> dir = ReadInode(dir_ino);
  if (!dir.ok()) {
    return dir.status();
  }
  if (dir.value().mode != kModeDir) {
    return FailedPreconditionError("not a directory");
  }
  if (name.size() > kNameMax) {
    return NotFoundError(std::string(name));
  }
  // Entries are written zero-padded (DirAdd), so a fixed-width compare
  // against a zero-padded key matches exactly the names strncmp accepted.
  std::array<char, kNameMax> key = {};
  std::memcpy(key.data(), name.data(), name.size());
  const uint64_t entries = dir.value().size / kDirEntryBytes;
  std::array<uint8_t, kDirEntryBytes> entry;
  for (uint64_t i = 0; i < entries; ++i) {
    Result<uint64_t> n =
        ReadAt(dir_ino, dir.value(), i * kDirEntryBytes, entry);
    if (!n.ok()) {
      return n.status();
    }
    stats_.dir_scans.Add();
    uint32_t ino;
    std::memcpy(&ino, entry.data(), 4);
    if (ino != 0 &&
        std::memcmp(entry.data() + 4, key.data(), kNameMax) == 0) {
      return ino;
    }
  }
  return NotFoundError(std::string(name));
}

Status DiskFileSystem::DirAdd(uint32_t dir_ino, std::string_view name,
                              uint32_t ino) {
  if (name.size() > kNameMax) {
    return InvalidArgumentError("name too long");
  }
  Result<DiskInode> dir = ReadInode(dir_ino);
  if (!dir.ok()) {
    return dir.status();
  }
  DiskInode inode = dir.value();
  // Find a free slot, else append.
  const uint64_t entries = inode.size / kDirEntryBytes;
  std::vector<uint8_t> entry(kDirEntryBytes);
  uint64_t slot = entries;
  for (uint64_t i = 0; i < entries; ++i) {
    Result<uint64_t> n = ReadAt(dir_ino, inode, i * kDirEntryBytes, entry);
    if (!n.ok()) {
      return n.status();
    }
    uint32_t existing;
    std::memcpy(&existing, entry.data(), 4);
    if (existing == 0) {
      slot = i;
      break;
    }
  }
  std::fill(entry.begin(), entry.end(), 0);
  std::memcpy(entry.data(), &ino, 4);
  std::memcpy(entry.data() + 4, name.data(), name.size());
  Result<uint64_t> wrote = WriteAt(dir_ino, inode, slot * kDirEntryBytes,
                                   entry);
  if (!wrote.ok()) {
    return wrote.status();
  }
  SSMC_RETURN_IF_ERROR(WriteInode(dir_ino, inode));
  if (options_.sync_metadata) {
    // Directory data is metadata: push it to disk for consistency.
    Result<uint32_t> blk = GetFileBlock(
        dir_ino, inode, slot * kDirEntryBytes / options_.block_bytes, false);
    if (blk.ok() && blk.value() != 0) {
      SSMC_RETURN_IF_ERROR(cache_.FlushBlock(blk.value()));
    }
  }
  return Status::Ok();
}

Status DiskFileSystem::DirRemove(uint32_t dir_ino, std::string_view name) {
  Result<DiskInode> dir = ReadInode(dir_ino);
  if (!dir.ok()) {
    return dir.status();
  }
  DiskInode inode = dir.value();
  if (name.size() > kNameMax) {
    return NotFoundError(std::string(name));
  }
  std::array<char, kNameMax> key = {};
  std::memcpy(key.data(), name.data(), name.size());
  const uint64_t entries = inode.size / kDirEntryBytes;
  std::array<uint8_t, kDirEntryBytes> entry;
  for (uint64_t i = 0; i < entries; ++i) {
    Result<uint64_t> n = ReadAt(dir_ino, inode, i * kDirEntryBytes, entry);
    if (!n.ok()) {
      return n.status();
    }
    uint32_t ino;
    std::memcpy(&ino, entry.data(), 4);
    if (ino != 0 &&
        std::memcmp(entry.data() + 4, key.data(), kNameMax) == 0) {
      std::fill(entry.begin(), entry.end(), 0);
      Result<uint64_t> wrote =
          WriteAt(dir_ino, inode, i * kDirEntryBytes, entry);
      if (!wrote.ok()) {
        return wrote.status();
      }
      return WriteInode(dir_ino, inode);
    }
  }
  return NotFoundError(std::string(name));
}

Result<bool> DiskFileSystem::DirEmpty(uint32_t dir_ino) {
  Result<DiskInode> dir = ReadInode(dir_ino);
  if (!dir.ok()) {
    return dir.status();
  }
  const uint64_t entries = dir.value().size / kDirEntryBytes;
  std::vector<uint8_t> entry(kDirEntryBytes);
  for (uint64_t i = 0; i < entries; ++i) {
    Result<uint64_t> n =
        ReadAt(dir_ino, dir.value(), i * kDirEntryBytes, entry);
    if (!n.ok()) {
      return n.status();
    }
    uint32_t ino;
    std::memcpy(&ino, entry.data(), 4);
    if (ino != 0) {
      return false;
    }
  }
  return true;
}

Result<std::vector<std::pair<std::string, uint32_t>>>
DiskFileSystem::DirEntries(uint32_t dir_ino) {
  Result<DiskInode> dir = ReadInode(dir_ino);
  if (!dir.ok()) {
    return dir.status();
  }
  if (dir.value().mode != kModeDir) {
    return FailedPreconditionError("not a directory");
  }
  std::vector<std::pair<std::string, uint32_t>> result;
  const uint64_t entries = dir.value().size / kDirEntryBytes;
  std::vector<uint8_t> entry(kDirEntryBytes);
  for (uint64_t i = 0; i < entries; ++i) {
    Result<uint64_t> n =
        ReadAt(dir_ino, dir.value(), i * kDirEntryBytes, entry);
    if (!n.ok()) {
      return n.status();
    }
    uint32_t ino;
    std::memcpy(&ino, entry.data(), 4);
    if (ino != 0) {
      result.emplace_back(
          std::string(reinterpret_cast<const char*>(entry.data() + 4)), ino);
    }
  }
  return result;
}

// --- Path resolution ----------------------------------------------------------

Result<uint32_t> DiskFileSystem::Resolve(std::string_view path) {
  if (!IsValidPath(path)) {
    return InvalidArgumentError("bad path: " + std::string(path));
  }
  uint32_t ino = kRootIno;
  for (const std::string_view component : PathComponents(path)) {
    Result<uint32_t> next = DirLookup(ino, component);
    if (!next.ok()) {
      return next.status();
    }
    ino = next.value();
  }
  return ino;
}

Result<uint32_t> DiskFileSystem::ResolveParent(std::string_view path) {
  if (!IsValidPath(path) || path == "/") {
    return InvalidArgumentError("bad path: " + std::string(path));
  }
  return Resolve(ParentPathView(path));
}

// --- FileSystem interface -------------------------------------------------------

Status DiskFileSystem::Create(const std::string& path) {
  Result<uint32_t> parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  if (DirLookup(parent.value(), BaseNameView(path)).ok()) {
    return AlreadyExistsError(path);
  }
  Result<uint32_t> ino = AllocateInode(kModeFile);
  if (!ino.ok()) {
    return ino.status();
  }
  SSMC_RETURN_IF_ERROR(DirAdd(parent.value(), BaseNameView(path), ino.value()));
  stats_.creates.Add();
  return Status::Ok();
}

Status DiskFileSystem::Mkdir(const std::string& path) {
  Result<uint32_t> parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  if (DirLookup(parent.value(), BaseNameView(path)).ok()) {
    return AlreadyExistsError(path);
  }
  Result<uint32_t> ino = AllocateInode(kModeDir);
  if (!ino.ok()) {
    return ino.status();
  }
  return DirAdd(parent.value(), BaseNameView(path), ino.value());
}

Status DiskFileSystem::Unlink(const std::string& path) {
  Result<uint32_t> parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  Result<uint32_t> ino = DirLookup(parent.value(), BaseNameView(path));
  if (!ino.ok()) {
    return ino.status();
  }
  Result<DiskInode> inode = ReadInode(ino.value());
  if (!inode.ok()) {
    return inode.status();
  }
  if (inode.value().mode == kModeDir) {
    return FailedPreconditionError(path + " is a directory");
  }
  SSMC_RETURN_IF_ERROR(FreeFileBlocks(inode.value(), 0));
  SSMC_RETURN_IF_ERROR(FreeInode(ino.value()));
  SSMC_RETURN_IF_ERROR(DirRemove(parent.value(), BaseNameView(path)));
  stats_.unlinks.Add();
  return Status::Ok();
}

Status DiskFileSystem::Rmdir(const std::string& path) {
  Result<uint32_t> parent = ResolveParent(path);
  if (!parent.ok()) {
    return parent.status();
  }
  Result<uint32_t> ino = DirLookup(parent.value(), BaseNameView(path));
  if (!ino.ok()) {
    return ino.status();
  }
  Result<DiskInode> inode = ReadInode(ino.value());
  if (!inode.ok()) {
    return inode.status();
  }
  if (inode.value().mode != kModeDir) {
    return FailedPreconditionError(path + " is not a directory");
  }
  Result<bool> empty = DirEmpty(ino.value());
  if (!empty.ok()) {
    return empty.status();
  }
  if (!empty.value()) {
    return FailedPreconditionError(path + " is not empty");
  }
  SSMC_RETURN_IF_ERROR(FreeFileBlocks(inode.value(), 0));
  SSMC_RETURN_IF_ERROR(FreeInode(ino.value()));
  return DirRemove(parent.value(), BaseNameView(path));
}

Result<uint64_t> DiskFileSystem::Read(const std::string& path, uint64_t offset,
                                      std::span<uint8_t> out) {
  Result<uint32_t> ino = Resolve(path);
  if (!ino.ok()) {
    return ino.status();
  }
  Result<DiskInode> inode = ReadInode(ino.value());
  if (!inode.ok()) {
    return inode.status();
  }
  if (inode.value().mode != kModeFile) {
    return FailedPreconditionError(path + " is not a regular file");
  }
  Result<uint64_t> n = ReadAt(ino.value(), inode.value(), offset, out);
  if (n.ok()) {
    stats_.reads.Add();
    stats_.read_bytes.Add(n.value());
  }
  return n;
}

Result<uint64_t> DiskFileSystem::Write(const std::string& path,
                                       uint64_t offset,
                                       std::span<const uint8_t> data) {
  Result<uint32_t> ino = Resolve(path);
  if (!ino.ok()) {
    return ino.status();
  }
  Result<DiskInode> inode = ReadInode(ino.value());
  if (!inode.ok()) {
    return inode.status();
  }
  if (inode.value().mode != kModeFile) {
    return FailedPreconditionError(path + " is not a regular file");
  }
  Result<uint64_t> n = WriteAt(ino.value(), inode.value(), offset, data);
  if (!n.ok()) {
    return n.status();
  }
  SSMC_RETURN_IF_ERROR(WriteInode(ino.value(), inode.value()));
  stats_.writes.Add();
  stats_.written_bytes.Add(n.value());
  return n;
}

Status DiskFileSystem::Truncate(const std::string& path, uint64_t size) {
  Result<uint32_t> ino = Resolve(path);
  if (!ino.ok()) {
    return ino.status();
  }
  Result<DiskInode> inode = ReadInode(ino.value());
  if (!inode.ok()) {
    return inode.status();
  }
  DiskInode node = inode.value();
  if (node.mode != kModeFile) {
    return FailedPreconditionError(path + " is not a regular file");
  }
  if (size < node.size) {
    const uint64_t first_dead = DivCeil(size, options_.block_bytes);
    SSMC_RETURN_IF_ERROR(FreeFileBlocks(node, first_dead));
    // Zero the cut-off tail of the surviving partial block so a later
    // extension reads zeros, not stale data.
    const uint64_t tail = size % options_.block_bytes;
    if (tail != 0) {
      Result<uint32_t> blk =
          GetFileBlock(ino.value(), node, size / options_.block_bytes,
                       /*allocate=*/false);
      if (!blk.ok()) {
        return blk.status();
      }
      if (blk.value() != 0) {
        const uint64_t zero_len =
            std::min(node.size - size, options_.block_bytes - tail);
        const std::vector<uint8_t> zeros(zero_len, 0);
        SSMC_RETURN_IF_ERROR(cache_.WritePartial(blk.value(), tail, zeros));
      }
    }
  }
  node.size = size;
  return WriteInode(ino.value(), node);
}

Result<FileInfo> DiskFileSystem::Stat(const std::string& path) {
  Result<uint32_t> ino = Resolve(path);
  if (!ino.ok()) {
    return ino.status();
  }
  Result<DiskInode> inode = ReadInode(ino.value());
  if (!inode.ok()) {
    return inode.status();
  }
  FileInfo info;
  info.is_directory = inode.value().mode == kModeDir;
  info.size = inode.value().size;
  return info;
}

Status DiskFileSystem::Rename(const std::string& from, const std::string& to) {
  Result<uint32_t> from_parent = ResolveParent(from);
  if (!from_parent.ok()) {
    return from_parent.status();
  }
  Result<uint32_t> ino = DirLookup(from_parent.value(), BaseNameView(from));
  if (!ino.ok()) {
    return ino.status();
  }
  Result<uint32_t> to_parent = ResolveParent(to);
  if (!to_parent.ok()) {
    return to_parent.status();
  }
  if (DirLookup(to_parent.value(), BaseNameView(to)).ok()) {
    return AlreadyExistsError(to);
  }
  SSMC_RETURN_IF_ERROR(DirAdd(to_parent.value(), BaseNameView(to), ino.value()));
  return DirRemove(from_parent.value(), BaseNameView(from));
}

Result<std::vector<std::string>> DiskFileSystem::List(
    const std::string& path) {
  Result<uint32_t> ino = Resolve(path);
  if (!ino.ok()) {
    return ino.status();
  }
  Result<std::vector<std::pair<std::string, uint32_t>>> entries =
      DirEntries(ino.value());
  if (!entries.ok()) {
    return entries.status();
  }
  std::vector<std::string> names;
  names.reserve(entries.value().size());
  for (const auto& [name, entry_ino] : entries.value()) {
    names.push_back(name);
  }
  return names;
}

Status DiskFileSystem::Sync() { return cache_.Sync(); }

}  // namespace ssmc
