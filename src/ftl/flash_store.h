// Log-structured flash store (flash translation layer).
//
// Implements the storage-manager techniques of Section 3.3: writes go to
// flash out-of-place, a garbage collector reclaims sectors "like those used
// in log-structured file systems", and wear leveling "evenly balance[s] the
// write load throughout flash memory". The store exposes a flat array of
// fixed-size logical blocks; callers (the storage manager / file systems)
// never see erase sectors or physical placement.
//
// Structure: the flash device's erase sectors are divided into pages of
// block_bytes each. A logical block maps to one valid physical page. Writes
// append to per-bank active sectors (keeping every bank usable so reads can
// proceed during slow programs/erases — the paper's bank partitioning).
// Overwriting a block marks the old page dead; the cleaner relocates the
// valid pages of a victim sector and erases it.
//
// Cleaning policies:
//  * kGreedy      — victim with the most dead pages (cheapest to clean now);
//  * kCostBenefit — LFS cost-benefit: maximize age*(1-u)/(1+u), which prefers
//                   older, emptier sectors and avoids repeatedly cleaning
//                   hot sectors.
// Wear-leveling policies:
//  * kNone    — free sectors reused FIFO, no attention to wear;
//  * kDynamic — allocation picks the free sector with the fewest erases;
//  * kStatic  — kDynamic plus periodic cold-data migration: when the erase-
//               count spread exceeds a threshold, the coldest data is moved
//               so its low-wear sector rejoins circulation.

#ifndef SSMC_SRC_FTL_FLASH_STORE_H_
#define SSMC_SRC_FTL_FLASH_STORE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/device/flash_device.h"
#include "src/ftl/victim_index.h"
#include "src/sim/io_stats.h"
#include "src/sim/stats.h"
#include "src/support/status.h"
#include "src/support/units.h"

namespace ssmc {

class Obs;

struct FlashStoreOptions {
  uint64_t block_bytes = 512;
  CleanerPolicy cleaner = CleanerPolicy::kCostBenefit;
  WearPolicy wear = WearPolicy::kDynamic;
  // Cleaning starts when the free-sector count drops to this level and runs
  // until it exceeds it (or no sector with dead pages remains).
  uint64_t free_sector_low_water = 2;
  // Fraction of sectors withheld from the logical capacity so cleaning
  // always has room to relocate into. At least 2 sectors are reserved.
  double overprovision = 0.10;
  // Static wear leveling: check every N erases; migrate cold data when
  // (max - min) erase count exceeds the delta.
  uint64_t static_wear_check_interval = 64;
  uint64_t static_wear_delta = 32;
  // When true, background (non-blocking) writes and cleaning do not advance
  // the caller's clock; the flash banks absorb the time. The storage
  // manager's flush path uses this.
  bool background_writes = false;
  // Bank segregation (Section 3.3): "One bank would hold read-mostly data,
  // such as application programs, while others would be used for data that
  // is more frequently written." When > 0, incoming user writes append only
  // to the first `hot_bank_count` banks, while cleaner relocations (data
  // that survived a sector's lifetime, i.e. read-mostly) append to the
  // remaining banks. Reads of cold data then never stall behind programs or
  // erases. 0 = round-robin across all banks.
  int hot_bank_count = 0;
  // A fully-valid sector in a hot bank is only distilled out to the cold
  // banks once it has gone unwritten this long (avoids ping-ponging data
  // that is merely between overwrites).
  Duration cold_eviction_age = 60 * kSecond;
  // Debug/differential mode: cross-check every indexed decision (cleaning
  // victim, free-sector take, cold eviction, wear-level target, free count)
  // against the retained linear-scan oracles. Mismatches are logged at
  // kError and counted in index_validation_failures(). O(sectors) per
  // decision — tests only.
  bool validate_indexes = false;
};

// Which append stream a page allocation serves (see hot_bank_count).
enum class WriteStream { kUser, kRelocation };

// Per-sector metadata exposed for policy testing and the wear benches.
// Snapshot of one sector's metadata. The store itself keeps this state in
// struct-of-arrays columns (see FlashStore); this assembled form is the
// interchange type for the linear-scan oracles and tests.
struct SectorMeta {
  uint32_t valid_pages = 0;
  uint32_t dead_pages = 0;
  uint32_t next_free_page = 0;   // Write pointer within the sector.
  SimTime last_write_time = 0;   // For cost-benefit aging.
  bool active = false;           // Currently the append target of a bank.
  bool free = false;             // Erased and in the free pool.
  bool bad = false;              // Worn out.
};

// Pure linear-scan victim selection, exercised directly by unit tests and
// retained as the reference oracle for the indexed fast path (see
// victim_index.h). Returns the victim sector index or -1 if no cleanable
// sector exists. Only sectors that are neither active, free, nor bad, and
// that contain at least one dead page, are candidates.
int64_t PickCleaningVictim(const std::vector<SectorMeta>& sectors,
                           uint32_t pages_per_sector, CleanerPolicy policy,
                           SimTime now);

// Linear-scan oracles for the remaining indexed decisions. Each reproduces
// the pre-index implementation verbatim; the indexed store must agree with
// them bit-for-bit (enforced by FlashStoreOptions::validate_indexes and the
// differential property suite).

// Free-sector choice over `pool` — (sector, erase_count) pairs in insertion
// order: last entry under the naive LIFO policy (wear_ordered = false), else
// the first entry with the strictly smallest erase count.
int64_t ScanPickFreeSector(
    const std::vector<std::pair<uint64_t, uint64_t>>& pool, bool wear_ordered);

// Oldest fully-valid, inactive, aged-out sector among the first
// `hot_sector_count` sectors, or -1.
int64_t ScanPickColdEvictionVictim(const std::vector<SectorMeta>& sectors,
                                   uint64_t hot_sector_count, SimTime now,
                                   Duration min_age);

// Wear spread and coldest occupied sector over all non-retired sectors.
struct WearScanResult {
  uint64_t min_erases = ~uint64_t{0};
  uint64_t max_erases = 0;
  int64_t coldest = -1;
};
WearScanResult ScanWearLevelState(const std::vector<SectorMeta>& sectors,
                                  const FlashDevice& flash);

class FlashStore {
 public:
  FlashStore(FlashDevice& flash, FlashStoreOptions options);
  ~FlashStore();

  FlashStore(const FlashStore&) = delete;
  FlashStore& operator=(const FlashStore&) = delete;

  uint64_t block_bytes() const { return options_.block_bytes; }
  // Number of logical blocks the store exposes (physical minus reserve).
  uint64_t num_blocks() const { return num_logical_blocks_; }
  uint64_t capacity_bytes() const { return num_blocks() * block_bytes(); }
  const FlashStoreOptions& options() const { return options_; }
  FlashDevice& device() { return flash_; }

  // Reads a logical block. Fails NOT_FOUND if the block was never written
  // (or was trimmed).
  Result<Duration> Read(uint64_t block, std::span<uint8_t> out);
  // As above with an explicit issue mode: the residency manager's promotion
  // reads run cleaner-class and non-blocking (the bank absorbs the time;
  // the caller's clock does not advance).
  Result<Duration> Read(uint64_t block, std::span<uint8_t> out,
                        IoIssue issue);

  // Byte-granular read within a block — flash is byte-addressable and
  // direct-mapped, so a partial read costs only the touched bytes (unlike a
  // disk, which always transfers whole sectors). offset + out.size() must
  // stay within the block. The issue carries the scheduling class, blocking
  // mode, and billing tenant (defaults to a blocking foreground read by the
  // default tenant, the pre-tenancy behavior).
  Result<Duration> ReadPartial(uint64_t block, uint64_t offset,
                               std::span<uint8_t> out, IoIssue issue = {});

  // Zero-copy block read: returns a shared ref to the block's stored payload
  // (a refcount bump for store-written blocks — no bytes move). Device
  // timing, energy, and stats are identical to Read. The residency manager's
  // clean-cache promotion and the write path of DRAM consumers use this.
  Result<PayloadRef> ReadRef(uint64_t block, IoIssue issue = {});

  // Writes a logical block (out of place). data.size() must equal
  // block_bytes. May trigger cleaning. Honors options_.background_writes.
  Result<Duration> Write(uint64_t block, std::span<const uint8_t> data);

  // Write with an explicit placement hint: callers that know the data is
  // read-mostly (program installation, archive storage) pass
  // WriteStream::kRelocation so it lands in the cold banks directly —
  // "file systems would be spread across flash memory banks appropriately"
  // (Section 3.3). Equivalent to Write() when segregation is off.
  Result<Duration> Write(uint64_t block, std::span<const uint8_t> data,
                         WriteStream hint);

  // Write with an explicit scheduling class (the storage manager's flush
  // path passes IoPriority::kFlush) and billing tenant. Whether the write
  // blocks the caller is still governed by options_.background_writes; the
  // class only affects dispatch order under IoSchedPolicy::kPriority, and
  // attribution always.
  Result<Duration> Write(uint64_t block, std::span<const uint8_t> data,
                         WriteStream hint, IoPriority priority,
                         TenantId tenant = kDefaultTenant);

  // Zero-copy block write: the store becomes a holder of the ref and
  // programs it without copying (the write-buffer flush path hands its entry
  // straight down). data.size() must equal block_bytes.
  Result<Duration> WriteRef(uint64_t block, PayloadRef data, WriteStream hint,
                            IoPriority priority,
                            TenantId tenant = kDefaultTenant);

  // The store's page-sized payload pool. Upper layers (write buffer, clean
  // cache, FS staging) draw from it so their blocks flow to/from flash as
  // refcount bumps.
  ExtentPool& extent_pool() { return extent_pool_; }

  // Drops a logical block's contents (marks its page dead).
  Status Trim(uint64_t block);

  bool IsMapped(uint64_t block) const {
    return block < map_.size() && map_[block] != kUnmapped;
  }

  // Physical flash address currently holding the block (for execute-in-place
  // mappings). Fails if unmapped. NOTE: cleaning relocates blocks, so XIP
  // users re-resolve through the VM layer on each fault.
  Result<uint64_t> PhysicalAddressOf(uint64_t block) const;

  // Runs cleaning until the free pool exceeds the low-water mark (used by
  // tests and the idle-cleaning path of the storage manager).
  Status Clean();

  struct Stats {
    Counter user_writes;        // Blocks written by callers.
    Counter user_reads;
    Counter gc_relocations;     // Valid pages moved by the cleaner.
    Counter gc_runs;            // Victim sectors cleaned.
    Counter erases;             // Successful sector erases.
    Counter wear_migrations;    // Sectors migrated by static leveling.
    Counter wear_level_failures;  // Static-leveling migrations that failed.
    Counter trims;
    // Per-tenant ops/bytes; relocations are billed to the tenant whose data
    // the cleaner moved (the page_tenant_ column remembers who programmed
    // each live page), not to whoever triggered the cleaning pass.
    TenantIoTable by_tenant;
  };
  const Stats& stats() const { return stats_; }

  // Total pages programmed / user pages written; 1.0 means no cleaning
  // overhead. The canonical flash write-amplification metric.
  double WriteAmplification() const;
  // The same ratio restricted to one tenant's writes and the relocations of
  // that tenant's data (its share of the cleaning bill).
  double TenantWriteAmplification(TenantId tenant) const;

  uint64_t free_sectors() const { return free_sector_count_; }
  // Assembled from the SoA columns; a snapshot, not a reference into state.
  SectorMeta sector_meta(uint64_t s) const {
    const SectorHot& h = hot_[s];
    SectorMeta m;
    m.valid_pages = h.valid_pages;
    m.dead_pages = h.dead_pages;
    m.next_free_page = next_free_page_[s];
    m.last_write_time = h.last_write_time;
    m.active = (h.flags & kActiveFlag) != 0;
    m.free = (h.flags & kFreeFlag) != 0;
    m.bad = (h.flags & kBadFlag) != 0;
    return m;
  }

  // Observability (nullable; null detaches): a "flash cleaner" trace track
  // with one span per cleaner pass / cold eviction / wear-level migration
  // plus wear-out instants, and a Stats mirror collector (free sectors and
  // write amplification as gauges). Does not touch the device's own obs —
  // attach that separately.
  void AttachObs(Obs* obs);

  // Mismatches recorded by validate_indexes mode (0 when the mode is off or
  // every indexed decision agreed with its linear-scan oracle).
  uint64_t index_validation_failures() const {
    return index_validation_failures_;
  }

  // Exhaustive structural audit: every index's membership and size must match
  // a fresh scan of the sector metadata. O(sectors log sectors); tests only.
  Status CheckIndexConsistency() const;

 private:
  static constexpr uint64_t kUnmapped = ~uint64_t{0};

  uint32_t pages_per_sector() const { return pps_; }
  uint64_t PageAddress(uint64_t page) const {
    return page * options_.block_bytes;
  }
  uint64_t SectorOfPage(uint64_t page) const {
    // pages-per-sector is a power of two in every real geometry; the shift
    // keeps this hot helper off the 64-bit divider.
    return page_shift_ >= 0 ? page >> page_shift_ : page / pps_;
  }

  // Takes a sector from `bank`'s free pool per the wear policy; returns -1
  // if the pool is empty.
  int64_t TakeFreeSector(int bank);

  // Finds a page to append to in a bank serving `stream` (falling back to
  // any bank when that range is full). If allow_clean, may run the cleaner
  // when free space is low. Returns the physical page index or an error.
  Result<uint64_t> AllocatePage(WriteStream stream, bool allow_clean);

  // Writes `data` into a freshly allocated page and points `block` at it.
  // The issue selects the request's scheduling class and foreground vs
  // background device timing.
  Result<Duration> WriteInternal(uint64_t block, std::span<const uint8_t> data,
                                 WriteStream stream, bool allow_clean,
                                 IoIssue issue);

  // Ref-taking core of every write: allocates a page and files the extent
  // with the device (no payload copy). WriteInternal wraps it by converting
  // the span into a pooled extent (the data plane's single copy).
  Result<Duration> WriteInternalRef(uint64_t block, PayloadRef data,
                                    WriteStream stream, bool allow_clean,
                                    IoIssue issue);

  // How this store issues device requests for the paper's three streams,
  // given options_.background_writes: user/flush writes and cleaner traffic
  // block the caller only when background mode is off. Cleaner requests are
  // billed to the tenant owning the page being moved, never to the tenant
  // whose allocation happened to trigger the pass.
  IoIssue UserIssue(IoPriority priority,
                    TenantId tenant = kDefaultTenant) const {
    return IoIssue{priority, !options_.background_writes, tenant};
  }
  IoIssue CleanerIssue(TenantId owner = kDefaultTenant) const {
    return IoIssue{IoPriority::kCleaner, !options_.background_writes, owner};
  }

  void MarkPageDead(uint64_t page);

  // Scoped suppression of index syncs for one sector. The cleaner kills a
  // victim's valid pages one relocation at a time, and each MarkPageDead
  // would re-index the victim under keys nobody can observe — no index is
  // queried until the relocation loop finishes (allocations inside it run
  // with allow_clean = false). Deferring collapses those intermediate
  // Remove/Insert pairs into the single sync the guard issues on scope exit
  // (by which point EraseAndFree has usually already settled the sector).
  // Nests by restoring the previous deferred sector.
  class DeferredSectorSync {
   public:
    DeferredSectorSync(FlashStore& store, uint64_t sector)
        : store_(store), sector_(sector),
          prev_(store.deferred_sync_sector_) {
      store_.deferred_sync_sector_ = static_cast<int64_t>(sector);
    }
    ~DeferredSectorSync() {
      store_.deferred_sync_sector_ = prev_;
      store_.UpdateSectorIndexes(sector_);
    }
    DeferredSectorSync(const DeferredSectorSync&) = delete;
    DeferredSectorSync& operator=(const DeferredSectorSync&) = delete;

   private:
    FlashStore& store_;
    uint64_t sector_;
    int64_t prev_;
  };

  // Cleans one victim sector; returns true if a sector was reclaimed.
  Result<bool> CleanOne();

  // Under bank segregation: relocates one fully-valid (no dead pages) sector
  // out of the hot banks into the cold stream and erases it. Such sectors
  // hold data that was written once and never overwritten — read-mostly data
  // squatting in the write banks that ordinary cleaning will never pick
  // (it has nothing dead to reclaim). Returns true if a sector was evicted.
  Result<bool> EvictColdSectorFromHotRange();

  // Erases a sector and returns it to the free pool (handles wear-out).
  Status EraseAndFree(uint64_t sector);

  // Static wear leveling check, run after every erase.
  void MaybeStaticWearLevel();

  // Re-syncs `sector`'s membership in the victim, cold-eviction, and wear
  // indexes from its current metadata. Must be called after any transition
  // of a sector's free/active/bad flags or page counts (except while the
  // sector is active — active sectors belong to no index).
  void UpdateSectorIndexes(uint64_t sector);

  // validate_indexes bookkeeping: logs at kError and bumps the counter.
  void RecordIndexMismatch(const char* what, int64_t indexed, int64_t oracle);

  // Background passes never advance the clock; the end of a pass in sim time
  // is when the last bank reservation it queued completes.
  SimTime BanksBusyUntil() const;
  // Records a cleaner-track span covering [t0, BanksBusyUntil()].
  void ObsCleanerSpan(const char* name, SimTime t0, uint64_t sector,
                      uint64_t relocated);

  FlashDevice& flash_;
  FlashStoreOptions options_;
  uint32_t pps_;        // sector_bytes / block_bytes, cached.
  int page_shift_ = -1; // log2(pps_) when it is a power of two.
  uint64_t num_logical_blocks_;

  // Per-sector state flag bits (SectorHot::flags).
  static constexpr uint8_t kActiveFlag = 1;  // Append target of a bank.
  static constexpr uint8_t kFreeFlag = 2;    // Erased, in the free pool.
  static constexpr uint8_t kBadFlag = 4;     // Worn out.

  // Hot column of the per-sector metadata: everything victim selection,
  // index syncs, and the scan oracles read, packed into 16 bytes so a random
  // sector access touches one cache line and a full-device scan walks a
  // dense array (64 Ki sectors fit in 1 MiB). The write pointer lives in its
  // own column below — only the page allocator reads it.
  struct SectorHot {
    SimTime last_write_time = 0;
    uint16_t valid_pages = 0;
    uint16_t dead_pages = 0;
    uint8_t flags = 0;
  };
  static_assert(sizeof(SectorHot) == 16);

  // AoS snapshot of every sector for the linear-scan oracles (validate mode
  // and consistency audits only — O(sectors)).
  std::vector<SectorMeta> SnapshotSectors() const;

  // Page-sized payload extents for the whole data plane (user writes,
  // cleaner relocation, upper-layer caches). Replaces the cleaner's
  // read-into-scratch-then-program copies: a relocation is now a refcount
  // bump plus a mapping update.
  ExtentPool extent_pool_;

  std::vector<uint64_t> map_;           // logical block -> physical page.
  std::vector<uint64_t> page_owner_;    // physical page -> logical block.
  std::vector<TenantId> page_tenant_;   // physical page -> billing tenant.
  std::vector<SectorHot> hot_;          // SoA: hot per-sector metadata.
  std::vector<uint32_t> next_free_page_;  // SoA: per-sector write pointer.
  std::vector<FreeSectorPool> free_pool_;  // Per-bank free sectors.
  uint64_t free_sector_count_ = 0;         // == sum of free_pool_ sizes.
  VictimIndex victim_index_;
  ColdSectorIndex cold_index_;
  std::unique_ptr<WearIndex> wear_index_;  // Only under WearPolicy::kStatic.
  bool observer_registered_ = false;       // Erase observer needs unhooking.
  // First hot_sector_count_ sectors form the hot-bank range; 0 = segregation
  // off (hot_bank_count outside (0, num_banks)).
  uint64_t hot_sector_count_ = 0;
  uint64_t index_validation_failures_ = 0;
  int64_t deferred_sync_sector_ = -1;  // See DeferredSectorSync.
  std::vector<int64_t> active_;                  // Per-bank active sector.
  int next_bank_ = 0;
  uint64_t erases_since_wear_check_ = 0;
  int cleans_since_evict_ = 0;
  bool cleaning_ = false;       // Re-entrancy guard for the cleaner.
  bool wear_leveling_ = false;  // Re-entrancy guard for static leveling.
  Stats stats_;
  Obs* obs_ = nullptr;
  int obs_cleaner_track_ = 0;
};

}  // namespace ssmc

#endif  // SSMC_SRC_FTL_FLASH_STORE_H_
