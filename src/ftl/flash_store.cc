#include "src/ftl/flash_store.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/support/log.h"

namespace ssmc {

int64_t PickCleaningVictim(const std::vector<SectorMeta>& sectors,
                           uint32_t pages_per_sector, CleanerPolicy policy,
                           SimTime now) {
  int64_t best = -1;
  double best_score = -1;
  for (size_t s = 0; s < sectors.size(); ++s) {
    const SectorMeta& m = sectors[s];
    if (m.active || m.free || m.bad || m.dead_pages == 0) {
      continue;
    }
    double score = 0;
    switch (policy) {
      case CleanerPolicy::kGreedy:
        score = static_cast<double>(m.dead_pages);
        break;
      case CleanerPolicy::kCostBenefit: {
        // LFS cost-benefit: benefit/cost = age * (1 - u) / (1 + u), where u
        // is the utilization (fraction of pages that must be relocated).
        const double u = static_cast<double>(m.valid_pages) /
                         static_cast<double>(pages_per_sector);
        const double age =
            static_cast<double>(std::max<SimTime>(1, now - m.last_write_time));
        score = age * (1.0 - u) / (1.0 + u);
        break;
      }
    }
    if (score > best_score) {
      best_score = score;
      best = static_cast<int64_t>(s);
    }
  }
  return best;
}

FlashStore::FlashStore(FlashDevice& flash, FlashStoreOptions options)
    : flash_(flash), options_(options) {
  assert(options_.block_bytes > 0);
  assert(flash_.sector_bytes() % options_.block_bytes == 0 &&
         "block size must divide the erase sector size");

  const uint64_t num_sectors = flash_.num_sectors();
  const uint64_t pps = pages_per_sector();
  // Reserve enough sectors that cleaning always has room to relocate into
  // and the free pool can rise above the cleaner's low-water mark (otherwise
  // every allocation would trigger a cleaning storm): at least one per bank
  // (active sectors can strand free pages), at least low-water + 2, or the
  // requested overprovisioning fraction, whichever is larger.
  const uint64_t min_reserve =
      std::max(static_cast<uint64_t>(flash_.num_banks()) + 1,
               options_.free_sector_low_water + 2);
  const uint64_t reserve = std::max(
      min_reserve, static_cast<uint64_t>(
                       std::ceil(options_.overprovision *
                                 static_cast<double>(num_sectors))));
  assert(reserve < num_sectors && "device too small for its reserve");
  num_logical_blocks_ = (num_sectors - reserve) * pps;

  map_.assign(num_logical_blocks_, kUnmapped);
  page_owner_.assign(num_sectors * pps, kUnmapped);
  sectors_.resize(num_sectors);
  for (auto& m : sectors_) {
    m.free = true;
  }
  free_pool_.resize(static_cast<size_t>(flash_.num_banks()));
  for (uint64_t s = 0; s < num_sectors; ++s) {
    free_pool_[static_cast<size_t>(flash_.BankOfSector(s))].push_back(s);
  }
  active_.assign(static_cast<size_t>(flash_.num_banks()), -1);
}

uint64_t FlashStore::free_sectors() const {
  uint64_t n = 0;
  for (const auto& pool : free_pool_) {
    n += pool.size();
  }
  return n;
}

int64_t FlashStore::TakeFreeSector(int bank) {
  auto& pool = free_pool_[static_cast<size_t>(bank)];
  if (pool.empty()) {
    return -1;
  }
  size_t pick = pool.size() - 1;  // kNone: LIFO — reuse the freshest erase,
                                  // the naive allocator that concentrates
                                  // wear on a handful of sectors.
  if (options_.wear != WearPolicy::kNone) {
    // Dynamic leveling: reuse the least-worn free sector first.
    pick = 0;
    for (size_t i = 1; i < pool.size(); ++i) {
      if (flash_.EraseCount(pool[i]) < flash_.EraseCount(pool[pick])) {
        pick = i;
      }
    }
  }
  const int64_t sector = static_cast<int64_t>(pool[pick]);
  pool.erase(pool.begin() + static_cast<ptrdiff_t>(pick));
  sectors_[static_cast<size_t>(sector)].free = false;
  return sector;
}

Result<uint64_t> FlashStore::AllocatePage(WriteStream stream,
                                          bool allow_clean) {
  // Proactive cleaning keeps the free pool above the low-water mark.
  if (allow_clean && free_sectors() <= options_.free_sector_low_water) {
    SSMC_RETURN_IF_ERROR(Clean());
  }

  const int banks = flash_.num_banks();
  // Bank segregation: user writes go to the hot range, relocated (cold)
  // data to the rest. With segregation off, or when the preferred range is
  // exhausted, any bank serves.
  int range_lo = 0;
  int range_len = banks;
  if (options_.hot_bank_count > 0 && options_.hot_bank_count < banks) {
    if (stream == WriteStream::kUser) {
      range_lo = 0;
      range_len = options_.hot_bank_count;
    } else {
      range_lo = options_.hot_bank_count;
      range_len = banks - options_.hot_bank_count;
    }
  }
  // Tries to take a page from banks [lo, lo+len).
  auto attempt = [&](int lo, int len) -> int64_t {
    const int start = lo + (next_bank_ % len);
    for (int i = 0; i < len; ++i) {
      const int bank = lo + (start - lo + i) % len;
      int64_t active = active_[static_cast<size_t>(bank)];
      if (active >= 0 &&
          sectors_[static_cast<size_t>(active)].next_free_page >=
              pages_per_sector()) {
        sectors_[static_cast<size_t>(active)].active = false;
        active = -1;
        active_[static_cast<size_t>(bank)] = -1;
      }
      if (active < 0) {
        active = TakeFreeSector(bank);
        if (active < 0) {
          continue;  // This bank is out of space; try the next.
        }
        sectors_[static_cast<size_t>(active)].active = true;
        active_[static_cast<size_t>(bank)] = active;
      }
      SectorMeta& m = sectors_[static_cast<size_t>(active)];
      const uint64_t page =
          static_cast<uint64_t>(active) * pages_per_sector() +
          m.next_free_page;
      m.next_free_page += 1;
      return static_cast<int64_t>(page);
    }
    return -1;
  };

  int64_t page = attempt(range_lo, range_len);
  if (page < 0 && allow_clean && !cleaning_) {
    // The preferred range is exhausted: clean (victims come from wherever
    // the dead pages are — under segregation that is this range) rather
    // than spilling this stream into the other banks.
    // Each time the hot range runs dry, also distill one fully-valid
    // (read-mostly) sector out to the cold banks: ordinary cleaning never
    // picks those (nothing dead to reclaim), so without this the write
    // banks silt up with data that belongs in the read-mostly banks.
    if (stream == WriteStream::kUser && options_.hot_bank_count > 0) {
      (void)EvictColdSectorFromHotRange();
      page = attempt(range_lo, range_len);
    }
    for (int rounds = 0; page < 0 && rounds < 64; ++rounds) {
      Result<bool> cleaned = CleanOne();
      if (!cleaned.ok() || !cleaned.value()) {
        break;
      }
      page = attempt(range_lo, range_len);
    }
  }
  if (page < 0 && range_len < banks) {
    page = attempt(0, banks);  // Last resort: any bank.
  }
  if (page < 0) {
    return NoSpaceError("flash store out of writable space");
  }
  return static_cast<uint64_t>(page);
}

Result<Duration> FlashStore::WriteInternal(uint64_t block,
                                           std::span<const uint8_t> data,
                                           WriteStream stream,
                                           bool allow_clean, bool blocking) {
  if (block >= num_logical_blocks_) {
    return OutOfRangeError("flash store block out of range");
  }
  if (data.size() != options_.block_bytes) {
    return InvalidArgumentError("flash store writes are whole blocks");
  }

  Result<uint64_t> page = AllocatePage(stream, allow_clean);
  if (!page.ok()) {
    return page.status();
  }
  next_bank_ += 1;

  Result<Duration> programmed =
      flash_.Program(PageAddress(page.value()), data, blocking);
  if (!programmed.ok()) {
    return programmed.status();
  }

  if (map_[block] != kUnmapped) {
    MarkPageDead(map_[block]);
  }
  map_[block] = page.value();
  page_owner_[page.value()] = block;
  SectorMeta& m = sectors_[SectorOfPage(page.value())];
  m.valid_pages += 1;
  m.last_write_time = flash_.clock().now();
  return programmed.value();
}

Result<Duration> FlashStore::Write(uint64_t block,
                                   std::span<const uint8_t> data) {
  return Write(block, data, WriteStream::kUser);
}

Result<Duration> FlashStore::Write(uint64_t block,
                                   std::span<const uint8_t> data,
                                   WriteStream hint) {
  Result<Duration> r =
      WriteInternal(block, data, hint, /*allow_clean=*/true,
                    /*blocking=*/!options_.background_writes);
  if (r.ok()) {
    stats_.user_writes.Add();
  }
  return r;
}

Result<Duration> FlashStore::Read(uint64_t block, std::span<uint8_t> out) {
  if (block >= num_logical_blocks_) {
    return OutOfRangeError("flash store block out of range");
  }
  if (out.size() != options_.block_bytes) {
    return InvalidArgumentError("flash store reads are whole blocks");
  }
  if (map_[block] == kUnmapped) {
    return NotFoundError("flash store block " + std::to_string(block) +
                         " is not mapped");
  }
  Result<Duration> r = flash_.Read(PageAddress(map_[block]), out);
  if (r.ok()) {
    stats_.user_reads.Add();
  }
  return r;
}

Result<Duration> FlashStore::ReadPartial(uint64_t block, uint64_t offset,
                                         std::span<uint8_t> out) {
  if (block >= num_logical_blocks_) {
    return OutOfRangeError("flash store block out of range");
  }
  if (offset + out.size() > options_.block_bytes) {
    return OutOfRangeError("partial read exceeds block bounds");
  }
  if (map_[block] == kUnmapped) {
    return NotFoundError("flash store block " + std::to_string(block) +
                         " is not mapped");
  }
  Result<Duration> r = flash_.Read(PageAddress(map_[block]) + offset, out);
  if (r.ok()) {
    stats_.user_reads.Add();
  }
  return r;
}

Status FlashStore::Trim(uint64_t block) {
  if (block >= num_logical_blocks_) {
    return OutOfRangeError("flash store block out of range");
  }
  if (map_[block] == kUnmapped) {
    return Status::Ok();  // Idempotent.
  }
  MarkPageDead(map_[block]);
  map_[block] = kUnmapped;
  stats_.trims.Add();
  return Status::Ok();
}

Result<uint64_t> FlashStore::PhysicalAddressOf(uint64_t block) const {
  if (block >= num_logical_blocks_ || map_[block] == kUnmapped) {
    return NotFoundError("flash store block is not mapped");
  }
  return PageAddress(map_[block]);
}

void FlashStore::MarkPageDead(uint64_t page) {
  SectorMeta& m = sectors_[SectorOfPage(page)];
  assert(m.valid_pages > 0);
  m.valid_pages -= 1;
  m.dead_pages += 1;
  page_owner_[page] = kUnmapped;
}

Status FlashStore::Clean() {
  if (cleaning_) {
    return Status::Ok();  // Re-entrancy from relocation writes.
  }
  cleaning_ = true;
  Status status = Status::Ok();
  // Segregated stores distill read-mostly sectors out of the hot banks as a
  // side effect of cleaning pressure (throttled to bound amplification).
  if (options_.hot_bank_count > 0 && ++cleans_since_evict_ >= 4) {
    cleans_since_evict_ = 0;
    Result<bool> evicted = EvictColdSectorFromHotRange();
    if (!evicted.ok()) {
      cleaning_ = false;
      return evicted.status();
    }
  }
  while (free_sectors() <= options_.free_sector_low_water) {
    Result<bool> cleaned = CleanOne();
    if (!cleaned.ok()) {
      status = cleaned.status();
      break;
    }
    if (!cleaned.value()) {
      break;  // Nothing cleanable; callers will see NO_SPACE on allocation.
    }
  }
  cleaning_ = false;
  return status;
}

Result<bool> FlashStore::CleanOne() {
  const int64_t victim = PickCleaningVictim(
      sectors_, pages_per_sector(), options_.cleaner, flash_.clock().now());
  if (victim < 0) {
    return false;
  }
  stats_.gc_runs.Add();

  // Relocate the victim's valid pages. Survivors go to the cold stream: a
  // page that stayed valid while its neighbors died is read-mostly, so under
  // bank segregation the cleaner continuously distills cold data out of the
  // write-hot banks (the LFS hot/cold separation insight).
  const WriteStream stream = WriteStream::kRelocation;
  const uint64_t pps = pages_per_sector();
  const uint64_t first_page = static_cast<uint64_t>(victim) * pps;
  std::vector<uint8_t> buf(options_.block_bytes);
  const bool blocking = !options_.background_writes;
  for (uint64_t p = first_page; p < first_page + pps; ++p) {
    const uint64_t owner = page_owner_[p];
    if (owner == kUnmapped) {
      continue;
    }
    Result<Duration> read = flash_.Read(PageAddress(p), buf, blocking);
    if (!read.ok()) {
      return read.status();
    }
    Result<Duration> moved =
        WriteInternal(owner, buf, stream, /*allow_clean=*/false, blocking);
    if (!moved.ok()) {
      return moved.status();
    }
    stats_.gc_relocations.Add();
  }

  SSMC_RETURN_IF_ERROR(EraseAndFree(static_cast<uint64_t>(victim)));
  return true;
}

Result<bool> FlashStore::EvictColdSectorFromHotRange() {
  if (options_.hot_bank_count <= 0 ||
      options_.hot_bank_count >= flash_.num_banks()) {
    return false;
  }
  // Oldest fully-valid, non-active sector in a hot bank.
  int64_t victim = -1;
  const uint64_t hot_sectors =
      static_cast<uint64_t>(options_.hot_bank_count) *
      flash_.sectors_per_bank();
  const SimTime now = flash_.clock().now();
  for (uint64_t s = 0; s < hot_sectors; ++s) {
    const SectorMeta& m = sectors_[s];
    if (m.active || m.free || m.bad || m.dead_pages != 0 ||
        m.valid_pages == 0) {
      continue;
    }
    if (now - m.last_write_time < options_.cold_eviction_age) {
      continue;  // Possibly just between overwrites; leave it be.
    }
    if (victim < 0 ||
        m.last_write_time <
            sectors_[static_cast<size_t>(victim)].last_write_time) {
      victim = static_cast<int64_t>(s);
    }
  }
  if (victim < 0) {
    return false;
  }
  const uint64_t pps = pages_per_sector();
  const uint64_t first_page = static_cast<uint64_t>(victim) * pps;
  std::vector<uint8_t> buf(options_.block_bytes);
  const bool blocking = !options_.background_writes;
  for (uint64_t p = first_page; p < first_page + pps; ++p) {
    const uint64_t owner = page_owner_[p];
    if (owner == kUnmapped) {
      continue;
    }
    Result<Duration> read = flash_.Read(PageAddress(p), buf, blocking);
    if (!read.ok()) {
      return read.status();
    }
    Result<Duration> moved =
        WriteInternal(owner, buf, WriteStream::kRelocation,
                      /*allow_clean=*/false, blocking);
    if (!moved.ok()) {
      return moved.status();
    }
    stats_.gc_relocations.Add();
  }
  SSMC_RETURN_IF_ERROR(EraseAndFree(static_cast<uint64_t>(victim)));
  return true;
}

Status FlashStore::EraseAndFree(uint64_t sector) {
  SectorMeta& m = sectors_[sector];
  assert(!m.active && !m.free);
  assert(m.valid_pages == 0 && "erasing a sector with live data");
  const bool blocking = !options_.background_writes;
  Result<Duration> erased = flash_.EraseSector(sector, blocking);
  if (!erased.ok()) {
    if (erased.status().code() == ErrorCode::kDataLoss) {
      // The sector wore out. Retire it; the store keeps running with less
      // spare capacity (graceful capacity degradation).
      m.bad = true;
      m.dead_pages = 0;
      SSMC_LOG(kInfo) << "flash store retired worn-out sector " << sector;
      return Status::Ok();
    }
    return erased.status();
  }
  stats_.erases.Add();
  m = SectorMeta{};
  m.free = true;
  free_pool_[static_cast<size_t>(flash_.BankOfSector(sector))].push_back(
      sector);
  erases_since_wear_check_ += 1;
  MaybeStaticWearLevel();
  return Status::Ok();
}

void FlashStore::MaybeStaticWearLevel() {
  if (options_.wear != WearPolicy::kStatic || wear_leveling_) {
    return;
  }
  if (erases_since_wear_check_ < options_.static_wear_check_interval) {
    return;
  }
  erases_since_wear_check_ = 0;

  // Find the wear spread and the coldest occupied sector.
  uint64_t min_erases = ~uint64_t{0};
  uint64_t max_erases = 0;
  int64_t coldest = -1;
  for (uint64_t s = 0; s < sectors_.size(); ++s) {
    if (sectors_[s].bad) {
      continue;
    }
    const uint64_t e = flash_.EraseCount(s);
    min_erases = std::min(min_erases, e);
    max_erases = std::max(max_erases, e);
    if (!sectors_[s].free && !sectors_[s].active &&
        (coldest < 0 || e < flash_.EraseCount(static_cast<uint64_t>(coldest)))) {
      coldest = static_cast<int64_t>(s);
    }
  }
  if (coldest < 0 || max_erases - min_erases <= options_.static_wear_delta) {
    return;
  }

  // Migrate the coldest sector's live data so its barely-worn cells rejoin
  // the allocation pool.
  wear_leveling_ = true;
  const uint64_t pps = pages_per_sector();
  const uint64_t first_page = static_cast<uint64_t>(coldest) * pps;
  std::vector<uint8_t> buf(options_.block_bytes);
  const bool blocking = !options_.background_writes;
  bool ok = true;
  for (uint64_t p = first_page; p < first_page + pps && ok; ++p) {
    const uint64_t owner = page_owner_[p];
    if (owner == kUnmapped) {
      continue;
    }
    ok = flash_.Read(PageAddress(p), buf, blocking).ok() &&
         WriteInternal(owner, buf, WriteStream::kRelocation,
                       /*allow_clean=*/false, blocking)
             .ok();
    if (ok) {
      stats_.gc_relocations.Add();
    }
  }
  if (ok && sectors_[static_cast<size_t>(coldest)].valid_pages == 0) {
    if (EraseAndFree(static_cast<uint64_t>(coldest)).ok()) {
      stats_.wear_migrations.Add();
    }
  }
  wear_leveling_ = false;
}

double FlashStore::WriteAmplification() const {
  if (stats_.user_writes.value() == 0) {
    return 1.0;
  }
  return static_cast<double>(stats_.user_writes.value() +
                             stats_.gc_relocations.value()) /
         static_cast<double>(stats_.user_writes.value());
}

}  // namespace ssmc
