#include "src/ftl/flash_store.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "src/obs/obs.h"
#include "src/support/log.h"

namespace ssmc {

int64_t PickCleaningVictim(const std::vector<SectorMeta>& sectors,
                           uint32_t pages_per_sector, CleanerPolicy policy,
                           SimTime now) {
  int64_t best = -1;
  double best_score = -1;
  for (size_t s = 0; s < sectors.size(); ++s) {
    const SectorMeta& m = sectors[s];
    if (m.active || m.free || m.bad || m.dead_pages == 0) {
      continue;
    }
    double score = 0;
    switch (policy) {
      case CleanerPolicy::kGreedy:
        score = static_cast<double>(m.dead_pages);
        break;
      case CleanerPolicy::kCostBenefit: {
        // LFS cost-benefit: benefit/cost = age * (1 - u) / (1 + u), where u
        // is the utilization (fraction of pages that must be relocated).
        const double u = static_cast<double>(m.valid_pages) /
                         static_cast<double>(pages_per_sector);
        const double age =
            static_cast<double>(std::max<SimTime>(1, now - m.last_write_time));
        score = age * (1.0 - u) / (1.0 + u);
        break;
      }
    }
    if (score > best_score) {
      best_score = score;
      best = static_cast<int64_t>(s);
    }
  }
  return best;
}

int64_t ScanPickFreeSector(
    const std::vector<std::pair<uint64_t, uint64_t>>& pool,
    bool wear_ordered) {
  if (pool.empty()) {
    return -1;
  }
  size_t pick = pool.size() - 1;  // LIFO: reuse the freshest erase.
  if (wear_ordered) {
    // Dynamic leveling: the first strictly-least-worn free sector.
    pick = 0;
    for (size_t i = 1; i < pool.size(); ++i) {
      if (pool[i].second < pool[pick].second) {
        pick = i;
      }
    }
  }
  return static_cast<int64_t>(pool[pick].first);
}

int64_t ScanPickColdEvictionVictim(const std::vector<SectorMeta>& sectors,
                                   uint64_t hot_sector_count, SimTime now,
                                   Duration min_age) {
  int64_t victim = -1;
  for (uint64_t s = 0; s < hot_sector_count; ++s) {
    const SectorMeta& m = sectors[s];
    if (m.active || m.free || m.bad || m.dead_pages != 0 ||
        m.valid_pages == 0) {
      continue;
    }
    if (now - m.last_write_time < min_age) {
      continue;  // Possibly just between overwrites; leave it be.
    }
    if (victim < 0 ||
        m.last_write_time <
            sectors[static_cast<size_t>(victim)].last_write_time) {
      victim = static_cast<int64_t>(s);
    }
  }
  return victim;
}

WearScanResult ScanWearLevelState(const std::vector<SectorMeta>& sectors,
                                  const FlashDevice& flash) {
  WearScanResult r;
  for (uint64_t s = 0; s < sectors.size(); ++s) {
    if (sectors[s].bad) {
      continue;
    }
    const uint64_t e = flash.EraseCount(s);
    r.min_erases = std::min(r.min_erases, e);
    r.max_erases = std::max(r.max_erases, e);
    if (!sectors[s].free && !sectors[s].active &&
        (r.coldest < 0 ||
         e < flash.EraseCount(static_cast<uint64_t>(r.coldest)))) {
      r.coldest = static_cast<int64_t>(s);
    }
  }
  return r;
}

FlashStore::FlashStore(FlashDevice& flash, FlashStoreOptions options)
    : flash_(flash),
      options_(options),
      pps_(static_cast<uint32_t>(flash.sector_bytes() / options.block_bytes)),
      extent_pool_(options.block_bytes),
      victim_index_(options.cleaner,
                    static_cast<uint32_t>(flash.sector_bytes() /
                                          options.block_bytes),
                    flash.num_sectors()),
      cold_index_(flash.num_sectors()) {
  assert(options_.block_bytes > 0);
  assert(flash_.sector_bytes() % options_.block_bytes == 0 &&
         "block size must divide the erase sector size");
  if (std::has_single_bit(static_cast<uint64_t>(pps_))) {
    page_shift_ = std::countr_zero(static_cast<uint64_t>(pps_));
  }

  const uint64_t num_sectors = flash_.num_sectors();
  const uint64_t pps = pages_per_sector();
  // Reserve enough sectors that cleaning always has room to relocate into
  // and the free pool can rise above the cleaner's low-water mark (otherwise
  // every allocation would trigger a cleaning storm): at least one per bank
  // (active sectors can strand free pages), at least low-water + 2, or the
  // requested overprovisioning fraction, whichever is larger.
  const uint64_t min_reserve =
      std::max(static_cast<uint64_t>(flash_.num_banks()) + 1,
               options_.free_sector_low_water + 2);
  const uint64_t reserve = std::max(
      min_reserve, static_cast<uint64_t>(
                       std::ceil(options_.overprovision *
                                 static_cast<double>(num_sectors))));
  assert(reserve < num_sectors && "device too small for its reserve");
  num_logical_blocks_ = (num_sectors - reserve) * pps;

  map_.assign(num_logical_blocks_, kUnmapped);
  page_owner_.assign(num_sectors * pps, kUnmapped);
  page_tenant_.assign(num_sectors * pps, kDefaultTenant);
  assert(pps <= UINT16_MAX && "SectorHot packs page counts into 16 bits");
  hot_.resize(num_sectors);
  for (SectorHot& h : hot_) {
    h.flags = kFreeFlag;
  }
  next_free_page_.assign(num_sectors, 0);
  free_pool_.assign(static_cast<size_t>(flash_.num_banks()),
                    FreeSectorPool(options_.wear != WearPolicy::kNone));
  for (uint64_t s = 0; s < num_sectors; ++s) {
    free_pool_[static_cast<size_t>(flash_.BankOfSector(s))].Add(
        s, flash_.EraseCount(s));
  }
  free_sector_count_ = num_sectors;
  active_.assign(static_cast<size_t>(flash_.num_banks()), -1);

  if (options_.hot_bank_count > 0 &&
      options_.hot_bank_count < flash_.num_banks()) {
    hot_sector_count_ = static_cast<uint64_t>(options_.hot_bank_count) *
                        flash_.sectors_per_bank();
  }

  if (options_.wear == WearPolicy::kStatic) {
    wear_index_ = std::make_unique<WearIndex>(num_sectors);
    for (uint64_t s = 0; s < num_sectors; ++s) {
      wear_index_->Seed(s, flash_.EraseCount(s));
    }
    // Erase counts change inside the device; observe them so the wear
    // trackers never need a rescan.
    flash_.set_erase_observer(
        [this](uint64_t sector, uint64_t new_count, bool now_bad) {
          wear_index_->OnEraseCountChanged(sector, new_count, now_bad);
        });
    observer_registered_ = true;
  }
}

FlashStore::~FlashStore() {
  if (observer_registered_) {
    flash_.set_erase_observer(nullptr);
  }
  if (obs_ != nullptr) {
    obs_->metrics().FlushAndRemoveCollector("ftl");
  }
}

std::vector<SectorMeta> FlashStore::SnapshotSectors() const {
  std::vector<SectorMeta> out(hot_.size());
  for (uint64_t s = 0; s < hot_.size(); ++s) {
    out[s] = sector_meta(s);
  }
  return out;
}

void FlashStore::UpdateSectorIndexes(uint64_t sector) {
  const SectorHot& h = hot_[sector];
  const bool usable = h.flags == 0;  // Neither active, free, nor bad.
  victim_index_.Sync(sector, h.valid_pages, h.dead_pages, h.last_write_time,
                     usable && h.dead_pages > 0);
  if (sector < hot_sector_count_) {
    cold_index_.Sync(sector, h.last_write_time,
                     usable && h.dead_pages == 0 && h.valid_pages > 0);
  }
  if (wear_index_ != nullptr) {
    wear_index_->SyncOccupied(sector, flash_.EraseCount(sector), usable);
  }
}

void FlashStore::RecordIndexMismatch(const char* what, int64_t indexed,
                                     int64_t oracle) {
  index_validation_failures_ += 1;
  SSMC_LOG(kError) << "FTL index mismatch (" << what << "): indexed " << indexed
                   << " vs linear-scan oracle " << oracle;
}

int64_t FlashStore::TakeFreeSector(int bank) {
  FreeSectorPool& pool = free_pool_[static_cast<size_t>(bank)];
  if (options_.validate_indexes) {
    const int64_t oracle = ScanPickFreeSector(
        pool.SnapshotInsertionOrder(), options_.wear != WearPolicy::kNone);
    if (oracle != pool.Peek()) {
      RecordIndexMismatch("free-sector take", pool.Peek(), oracle);
    }
  }
  const int64_t sector = pool.Take();
  if (sector < 0) {
    return -1;
  }
  hot_[static_cast<size_t>(sector)].flags &= ~kFreeFlag;
  free_sector_count_ -= 1;
  return sector;
}

Result<uint64_t> FlashStore::AllocatePage(WriteStream stream,
                                          bool allow_clean) {
  if (options_.validate_indexes) {
    uint64_t pool_sum = 0;
    for (const FreeSectorPool& pool : free_pool_) {
      pool_sum += pool.size();
    }
    if (pool_sum != free_sector_count_) {
      RecordIndexMismatch("free-sector count",
                          static_cast<int64_t>(free_sector_count_),
                          static_cast<int64_t>(pool_sum));
    }
  }
  // Proactive cleaning keeps the free pool above the low-water mark.
  if (allow_clean && free_sectors() <= options_.free_sector_low_water) {
    SSMC_RETURN_IF_ERROR(Clean());
  }

  const int banks = flash_.num_banks();
  // Bank segregation: user writes go to the hot range, relocated (cold)
  // data to the rest. With segregation off, or when the preferred range is
  // exhausted, any bank serves.
  int range_lo = 0;
  int range_len = banks;
  if (options_.hot_bank_count > 0 && options_.hot_bank_count < banks) {
    if (stream == WriteStream::kUser) {
      range_lo = 0;
      range_len = options_.hot_bank_count;
    } else {
      range_lo = options_.hot_bank_count;
      range_len = banks - options_.hot_bank_count;
    }
  }
  // Tries to take a page from banks [lo, lo+len).
  auto attempt = [&](int lo, int len) -> int64_t {
    // len is tiny (bank count); rotate with compares, not integer division.
    int rot = len == 1 ? 0 : next_bank_ % len;
    for (int i = 0; i < len; ++i) {
      const int bank = lo + rot;
      rot = rot + 1 == len ? 0 : rot + 1;
      int64_t active = active_[static_cast<size_t>(bank)];
      if (active >= 0 &&
          next_free_page_[static_cast<size_t>(active)] >= pages_per_sector()) {
        hot_[static_cast<size_t>(active)].flags &= ~kActiveFlag;
        active_[static_cast<size_t>(bank)] = -1;
        // The filled sector just became eligible for cleaning (if it holds
        // dead pages) or cold eviction (if fully valid).
        UpdateSectorIndexes(static_cast<uint64_t>(active));
        active = -1;
      }
      if (active < 0) {
        active = TakeFreeSector(bank);
        if (active < 0) {
          continue;  // This bank is out of space; try the next.
        }
        hot_[static_cast<size_t>(active)].flags |= kActiveFlag;
        active_[static_cast<size_t>(bank)] = active;
      }
      const uint64_t page =
          static_cast<uint64_t>(active) * pages_per_sector() +
          next_free_page_[static_cast<size_t>(active)];
      next_free_page_[static_cast<size_t>(active)] += 1;
      return static_cast<int64_t>(page);
    }
    return -1;
  };

  int64_t page = attempt(range_lo, range_len);
  if (page < 0 && allow_clean && !cleaning_) {
    // The preferred range is exhausted: clean (victims come from wherever
    // the dead pages are — under segregation that is this range) rather
    // than spilling this stream into the other banks.
    // Each time the hot range runs dry, also distill one fully-valid
    // (read-mostly) sector out to the cold banks: ordinary cleaning never
    // picks those (nothing dead to reclaim), so without this the write
    // banks silt up with data that belongs in the read-mostly banks.
    if (stream == WriteStream::kUser && options_.hot_bank_count > 0) {
      (void)EvictColdSectorFromHotRange();
      page = attempt(range_lo, range_len);
    }
    for (int rounds = 0; page < 0 && rounds < 64; ++rounds) {
      Result<bool> cleaned = CleanOne();
      if (!cleaned.ok() || !cleaned.value()) {
        break;
      }
      page = attempt(range_lo, range_len);
    }
  }
  if (page < 0 && range_len < banks) {
    page = attempt(0, banks);  // Last resort: any bank.
  }
  if (page < 0) {
    return NoSpaceError("flash store out of writable space");
  }
  return static_cast<uint64_t>(page);
}

Result<Duration> FlashStore::WriteInternal(uint64_t block,
                                           std::span<const uint8_t> data,
                                           WriteStream stream,
                                           bool allow_clean, IoIssue issue) {
  if (block >= num_logical_blocks_) {
    return OutOfRangeError("flash store block out of range");
  }
  if (data.size() != options_.block_bytes) {
    return InvalidArgumentError("flash store writes are whole blocks");
  }
  // The data plane's single copy: the caller's span becomes a pooled extent
  // here, and from this point on only the ref moves (program, relocation,
  // cache promotion).
  return WriteInternalRef(block, extent_pool_.AllocateCopy(data.data()),
                          stream, allow_clean, issue);
}

Result<Duration> FlashStore::WriteInternalRef(uint64_t block, PayloadRef data,
                                              WriteStream stream,
                                              bool allow_clean, IoIssue issue) {
  if (block >= num_logical_blocks_) {
    return OutOfRangeError("flash store block out of range");
  }
  if (data.size() != options_.block_bytes) {
    return InvalidArgumentError("flash store writes are whole blocks");
  }

  // Hint the overwrite bookkeeping below: the allocator and device work in
  // between gives these random-access lines time to arrive. Advisory only —
  // cleaning may remap the block meanwhile, so the authoritative map_ read
  // happens after the program.
  if (const uint64_t prior = map_[block]; prior != kUnmapped) {
    __builtin_prefetch(&page_owner_[prior], 1);
    __builtin_prefetch(&hot_[SectorOfPage(prior)], 1);
    victim_index_.Prefetch(SectorOfPage(prior));
  }

  Result<uint64_t> page = AllocatePage(stream, allow_clean);
  if (!page.ok()) {
    return page.status();
  }
  next_bank_ += 1;

  Result<Duration> programmed =
      flash_.ProgramExtent(PageAddress(page.value()), std::move(data), issue);
  if (!programmed.ok()) {
    return programmed.status();
  }

  if (map_[block] != kUnmapped) {
    MarkPageDead(map_[block]);
  }
  map_[block] = page.value();
  page_owner_[page.value()] = block;
  page_tenant_[page.value()] = issue.tenant;
  SectorHot& h = hot_[SectorOfPage(page.value())];
  assert((h.flags & kActiveFlag) != 0 &&
         "programs only target the bank's active sector");
  h.valid_pages += 1;
  h.last_write_time = flash_.clock().now();
  // No index update: active sectors are excluded from every index, and the
  // sector enters them with its final metadata when it is deactivated.
  return programmed.value();
}

Result<Duration> FlashStore::Write(uint64_t block,
                                   std::span<const uint8_t> data) {
  return Write(block, data, WriteStream::kUser);
}

Result<Duration> FlashStore::Write(uint64_t block,
                                   std::span<const uint8_t> data,
                                   WriteStream hint) {
  // Background mode means the write is flush traffic draining in the
  // write-behind path; otherwise the caller is waiting on it.
  return Write(block, data, hint,
               options_.background_writes ? IoPriority::kFlush
                                          : IoPriority::kForeground);
}

Result<Duration> FlashStore::Write(uint64_t block,
                                   std::span<const uint8_t> data,
                                   WriteStream hint, IoPriority priority,
                                   TenantId tenant) {
  Result<Duration> r =
      WriteInternal(block, data, hint, /*allow_clean=*/true,
                    UserIssue(priority, tenant));
  if (r.ok()) {
    stats_.user_writes.Add();
    TenantIoStats& lane = stats_.by_tenant.For(tenant);
    lane.writes.Add();
    lane.written_bytes.Add(data.size());
  }
  return r;
}

Result<Duration> FlashStore::WriteRef(uint64_t block, PayloadRef data,
                                      WriteStream hint, IoPriority priority,
                                      TenantId tenant) {
  const uint64_t bytes = data.size();
  Result<Duration> r =
      WriteInternalRef(block, std::move(data), hint, /*allow_clean=*/true,
                       UserIssue(priority, tenant));
  if (r.ok()) {
    stats_.user_writes.Add();
    TenantIoStats& lane = stats_.by_tenant.For(tenant);
    lane.writes.Add();
    lane.written_bytes.Add(bytes);
  }
  return r;
}

Result<Duration> FlashStore::Read(uint64_t block, std::span<uint8_t> out) {
  return Read(block, out, IoIssue{});
}

Result<Duration> FlashStore::Read(uint64_t block, std::span<uint8_t> out,
                                  IoIssue issue) {
  if (block >= num_logical_blocks_) {
    return OutOfRangeError("flash store block out of range");
  }
  if (out.size() != options_.block_bytes) {
    return InvalidArgumentError("flash store reads are whole blocks");
  }
  if (map_[block] == kUnmapped) {
    return NotFoundError("flash store block " + std::to_string(block) +
                         " is not mapped");
  }
  Result<Duration> r = flash_.Read(PageAddress(map_[block]), out, issue);
  if (r.ok()) {
    stats_.user_reads.Add();
    TenantIoStats& lane = stats_.by_tenant.For(issue.tenant);
    lane.reads.Add();
    lane.read_bytes.Add(out.size());
  }
  return r;
}

Result<PayloadRef> FlashStore::ReadRef(uint64_t block, IoIssue issue) {
  if (block >= num_logical_blocks_) {
    return OutOfRangeError("flash store block out of range");
  }
  if (map_[block] == kUnmapped) {
    return NotFoundError("flash store block " + std::to_string(block) +
                         " is not mapped");
  }
  Result<PayloadRef> r = flash_.ReadExtent(
      PageAddress(map_[block]), options_.block_bytes, extent_pool_, issue);
  if (r.ok()) {
    stats_.user_reads.Add();
    TenantIoStats& lane = stats_.by_tenant.For(issue.tenant);
    lane.reads.Add();
    lane.read_bytes.Add(options_.block_bytes);
  }
  return r;
}

Result<Duration> FlashStore::ReadPartial(uint64_t block, uint64_t offset,
                                         std::span<uint8_t> out,
                                         IoIssue issue) {
  if (block >= num_logical_blocks_) {
    return OutOfRangeError("flash store block out of range");
  }
  if (offset + out.size() > options_.block_bytes) {
    return OutOfRangeError("partial read exceeds block bounds");
  }
  if (map_[block] == kUnmapped) {
    return NotFoundError("flash store block " + std::to_string(block) +
                         " is not mapped");
  }
  Result<Duration> r =
      flash_.Read(PageAddress(map_[block]) + offset, out, issue);
  if (r.ok()) {
    stats_.user_reads.Add();
    TenantIoStats& lane = stats_.by_tenant.For(issue.tenant);
    lane.reads.Add();
    lane.read_bytes.Add(out.size());
  }
  return r;
}

Status FlashStore::Trim(uint64_t block) {
  if (block >= num_logical_blocks_) {
    return OutOfRangeError("flash store block out of range");
  }
  if (map_[block] == kUnmapped) {
    return Status::Ok();  // Idempotent.
  }
  MarkPageDead(map_[block]);
  map_[block] = kUnmapped;
  stats_.trims.Add();
  return Status::Ok();
}

Result<uint64_t> FlashStore::PhysicalAddressOf(uint64_t block) const {
  if (block >= num_logical_blocks_ || map_[block] == kUnmapped) {
    return NotFoundError("flash store block is not mapped");
  }
  return PageAddress(map_[block]);
}

void FlashStore::MarkPageDead(uint64_t page) {
  const uint64_t sector = SectorOfPage(page);
  SectorHot& h = hot_[sector];
  assert(h.valid_pages > 0);
  h.valid_pages -= 1;
  h.dead_pages += 1;
  page_owner_[page] = kUnmapped;
  if (static_cast<int64_t>(sector) != deferred_sync_sector_) {
    UpdateSectorIndexes(sector);
  }
}

void FlashStore::AttachObs(Obs* obs) {
  if (obs_ != nullptr && obs_ != obs) {
    obs_->metrics().FlushAndRemoveCollector("ftl");
  }
  obs_ = obs;
  if (obs_ == nullptr) {
    return;
  }
  obs_cleaner_track_ = obs_->tracer().RegisterTrack("flash cleaner");
  MetricsRegistry& m = obs_->metrics();
  Counter* user_writes = m.AddCounter("ftl/user_writes");
  Counter* user_reads = m.AddCounter("ftl/user_reads");
  Counter* gc_runs = m.AddCounter("ftl/gc_runs");
  Counter* gc_relocations = m.AddCounter("ftl/gc_relocations");
  Counter* erases = m.AddCounter("ftl/erases");
  Counter* wear_migrations = m.AddCounter("ftl/wear_migrations");
  Counter* trims = m.AddCounter("ftl/trims");
  Gauge* free_sectors_g = m.AddGauge("ftl/free_sectors");
  Gauge* wa_milli = m.AddGauge("ftl/write_amp_milli");
  m.AddCollector("ftl", [=, this] {
    auto mirror = [](Counter* dst, const Counter& src) {
      dst->Reset();
      dst->Add(src.value());
    };
    mirror(user_writes, stats_.user_writes);
    mirror(user_reads, stats_.user_reads);
    mirror(gc_runs, stats_.gc_runs);
    mirror(gc_relocations, stats_.gc_relocations);
    mirror(erases, stats_.erases);
    mirror(wear_migrations, stats_.wear_migrations);
    mirror(trims, stats_.trims);
    free_sectors_g->Set(static_cast<int64_t>(free_sector_count_));
    wa_milli->Set(static_cast<int64_t>(WriteAmplification() * 1000.0));
    // Per-tenant write-amplification share, registered lazily as tenants
    // appear (AddGauge/AddCounter are idempotent per name).
    for (const auto& e : stats_.by_tenant.entries()) {
      const std::string base = "ftl/tenant" + std::to_string(e.tenant) + "/";
      auto mirror_lane = [&](const char* key, const Counter& src) {
        Counter* dst = obs_->metrics().AddCounter(base + key);
        dst->Reset();
        dst->Add(src.value());
      };
      mirror_lane("writes", e.value.writes);
      mirror_lane("reads", e.value.reads);
      mirror_lane("relocations", e.value.relocations);
      obs_->metrics()
          .AddGauge(base + "write_amp_milli")
          ->Set(static_cast<int64_t>(TenantWriteAmplification(e.tenant) *
                                     1000.0));
    }
  });
}

SimTime FlashStore::BanksBusyUntil() const {
  SimTime t = 0;
  for (int b = 0; b < flash_.num_banks(); ++b) {
    t = std::max(t, flash_.BankBusyUntil(b));
  }
  return t;
}

void FlashStore::ObsCleanerSpan(const char* name, SimTime t0, uint64_t sector,
                                uint64_t relocated) {
  obs_->tracer().Span(obs_cleaner_track_, name, t0,
                      std::max<Duration>(0, BanksBusyUntil() - t0),
                      {"sector", sector}, {"relocated", relocated});
}

Status FlashStore::Clean() {
  if (cleaning_) {
    return Status::Ok();  // Re-entrancy from relocation writes.
  }
  cleaning_ = true;
  Status status = Status::Ok();
  // Segregated stores distill read-mostly sectors out of the hot banks as a
  // side effect of cleaning pressure (throttled to bound amplification).
  if (options_.hot_bank_count > 0 && ++cleans_since_evict_ >= 4) {
    cleans_since_evict_ = 0;
    Result<bool> evicted = EvictColdSectorFromHotRange();
    if (!evicted.ok()) {
      cleaning_ = false;
      return evicted.status();
    }
  }
  while (free_sectors() <= options_.free_sector_low_water) {
    Result<bool> cleaned = CleanOne();
    if (!cleaned.ok()) {
      status = cleaned.status();
      break;
    }
    if (!cleaned.value()) {
      break;  // Nothing cleanable; callers will see NO_SPACE on allocation.
    }
  }
  cleaning_ = false;
  return status;
}

Result<bool> FlashStore::CleanOne() {
  const SimTime now = flash_.clock().now();
  const int64_t victim = victim_index_.Pick(now);
  if (options_.validate_indexes) {
    const int64_t oracle =
        PickCleaningVictim(SnapshotSectors(), pages_per_sector(),
                           options_.cleaner, now);
    if (oracle != victim) {
      RecordIndexMismatch("cleaning victim", victim, oracle);
    }
  }
  if (victim < 0) {
    return false;
  }
  stats_.gc_runs.Add();
  const uint64_t relocations_before = stats_.gc_relocations.value();

  // Relocate the victim's valid pages. Survivors go to the cold stream: a
  // page that stayed valid while its neighbors died is read-mostly, so under
  // bank segregation the cleaner continuously distills cold data out of the
  // write-hot banks (the LFS hot/cold separation insight).
  const WriteStream stream = WriteStream::kRelocation;
  const uint64_t pps = pages_per_sector();
  const uint64_t first_page = static_cast<uint64_t>(victim) * pps;
  DeferredSectorSync defer(*this, static_cast<uint64_t>(victim));
  // The owners' map entries are scattered or cold; start pulling them in
  // before the relocation loop takes its first dependent miss on each. (The
  // payloads themselves are untouched: ReadExtent + WriteInternalRef move
  // refs, not bytes.)
  for (uint64_t p = first_page; p < first_page + pps; ++p) {
    if (page_owner_[p] != kUnmapped) {
      __builtin_prefetch(&map_[page_owner_[p]], 1);
    }
  }
  flash_.PrefetchExtentIndex(static_cast<uint64_t>(victim));
  for (uint64_t p = first_page; p < first_page + pps; ++p) {
    const uint64_t owner = page_owner_[p];
    if (owner == kUnmapped) {
      continue;
    }
    // The move is billed to the tenant whose data survives, not to whoever
    // triggered this cleaning pass.
    const IoIssue issue = CleanerIssue(page_tenant_[p]);
    Result<PayloadRef> read =
        flash_.ReadExtent(PageAddress(p), options_.block_bytes, extent_pool_,
                          issue);
    if (!read.ok()) {
      return read.status();
    }
    Result<Duration> moved =
        WriteInternalRef(owner, std::move(read.value()), stream,
                         /*allow_clean=*/false, issue);
    if (!moved.ok()) {
      return moved.status();
    }
    stats_.gc_relocations.Add();
    stats_.by_tenant.For(issue.tenant).relocations.Add();
  }

  SSMC_RETURN_IF_ERROR(EraseAndFree(static_cast<uint64_t>(victim)));
  if (obs_ != nullptr) {
    ObsCleanerSpan("clean", now, static_cast<uint64_t>(victim),
                   stats_.gc_relocations.value() - relocations_before);
  }
  return true;
}

Result<bool> FlashStore::EvictColdSectorFromHotRange() {
  if (hot_sector_count_ == 0) {
    return false;
  }
  // Oldest fully-valid, non-active sector in a hot bank.
  const SimTime now = flash_.clock().now();
  const int64_t victim =
      cold_index_.PickOlderThan(now, options_.cold_eviction_age);
  if (options_.validate_indexes) {
    const int64_t oracle = ScanPickColdEvictionVictim(
        SnapshotSectors(), hot_sector_count_, now,
        options_.cold_eviction_age);
    if (oracle != victim) {
      RecordIndexMismatch("cold eviction victim", victim, oracle);
    }
  }
  if (victim < 0) {
    return false;
  }
  const uint64_t relocations_before = stats_.gc_relocations.value();
  const uint64_t pps = pages_per_sector();
  const uint64_t first_page = static_cast<uint64_t>(victim) * pps;
  DeferredSectorSync defer(*this, static_cast<uint64_t>(victim));
  for (uint64_t p = first_page; p < first_page + pps; ++p) {
    if (page_owner_[p] != kUnmapped) {
      __builtin_prefetch(&map_[page_owner_[p]], 1);
    }
  }
  flash_.PrefetchExtentIndex(static_cast<uint64_t>(victim));
  for (uint64_t p = first_page; p < first_page + pps; ++p) {
    const uint64_t owner = page_owner_[p];
    if (owner == kUnmapped) {
      continue;
    }
    const IoIssue issue = CleanerIssue(page_tenant_[p]);
    Result<PayloadRef> read =
        flash_.ReadExtent(PageAddress(p), options_.block_bytes, extent_pool_,
                          issue);
    if (!read.ok()) {
      return read.status();
    }
    Result<Duration> moved =
        WriteInternalRef(owner, std::move(read.value()),
                         WriteStream::kRelocation,
                         /*allow_clean=*/false, issue);
    if (!moved.ok()) {
      return moved.status();
    }
    stats_.gc_relocations.Add();
    stats_.by_tenant.For(issue.tenant).relocations.Add();
  }
  SSMC_RETURN_IF_ERROR(EraseAndFree(static_cast<uint64_t>(victim)));
  if (obs_ != nullptr) {
    ObsCleanerSpan("cold-evict", now, static_cast<uint64_t>(victim),
                   stats_.gc_relocations.value() - relocations_before);
  }
  return true;
}

Status FlashStore::EraseAndFree(uint64_t sector) {
  SectorHot& h = hot_[sector];
  assert((h.flags & (kActiveFlag | kFreeFlag)) == 0);
  assert(h.valid_pages == 0 && "erasing a sector with live data");
  Result<Duration> erased = flash_.EraseSector(sector, CleanerIssue());
  if (!erased.ok()) {
    if (erased.status().code() == ErrorCode::kDataLoss) {
      // The sector wore out. Retire it; the store keeps running with less
      // spare capacity (graceful capacity degradation). Retirement must
      // remove the sector from every index — it never becomes free,
      // cleanable, or a wear-leveling target again.
      h.flags |= kBadFlag;
      h.dead_pages = 0;
      UpdateSectorIndexes(sector);
      if (obs_ != nullptr) {
        obs_->tracer().Instant(obs_cleaner_track_, "sector-retired",
                               flash_.clock().now(), {"sector", sector});
      }
      SSMC_LOG(kInfo) << "flash store retired worn-out sector " << sector;
      return Status::Ok();
    }
    return erased.status();
  }
  stats_.erases.Add();
  h = SectorHot{};
  h.flags = kFreeFlag;
  next_free_page_[sector] = 0;
  UpdateSectorIndexes(sector);
  free_pool_[static_cast<size_t>(flash_.BankOfSector(sector))].Add(
      sector, flash_.EraseCount(sector));
  free_sector_count_ += 1;
  erases_since_wear_check_ += 1;
  MaybeStaticWearLevel();
  return Status::Ok();
}

void FlashStore::MaybeStaticWearLevel() {
  if (options_.wear != WearPolicy::kStatic || wear_leveling_) {
    return;
  }
  if (erases_since_wear_check_ < options_.static_wear_check_interval) {
    return;
  }
  erases_since_wear_check_ = 0;

  // Wear spread and the coldest occupied sector, from the running trackers.
  uint64_t min_erases = ~uint64_t{0};
  uint64_t max_erases = 0;
  if (wear_index_->has_sectors()) {
    min_erases = wear_index_->min_erases();
    max_erases = wear_index_->max_erases();
  }
  const int64_t coldest = wear_index_->ColdestOccupied();
  if (options_.validate_indexes) {
    const WearScanResult oracle = ScanWearLevelState(SnapshotSectors(), flash_);
    if (oracle.coldest != coldest || oracle.min_erases != min_erases ||
        oracle.max_erases != max_erases) {
      RecordIndexMismatch("wear-level target", coldest, oracle.coldest);
    }
  }
  if (coldest < 0 || max_erases - min_erases <= options_.static_wear_delta) {
    return;
  }

  // Migrate the coldest sector's live data so its barely-worn cells rejoin
  // the allocation pool.
  wear_leveling_ = true;
  const SimTime migrate_start = flash_.clock().now();
  const uint64_t relocations_before = stats_.gc_relocations.value();
  const uint64_t pps = pages_per_sector();
  const uint64_t first_page = static_cast<uint64_t>(coldest) * pps;
  DeferredSectorSync defer(*this, static_cast<uint64_t>(coldest));
  for (uint64_t p = first_page; p < first_page + pps; ++p) {
    if (page_owner_[p] != kUnmapped) {
      __builtin_prefetch(&map_[page_owner_[p]], 1);
    }
  }
  flash_.PrefetchExtentIndex(static_cast<uint64_t>(coldest));
  Status migrate = Status::Ok();
  for (uint64_t p = first_page; p < first_page + pps; ++p) {
    const uint64_t owner = page_owner_[p];
    if (owner == kUnmapped) {
      continue;
    }
    const IoIssue issue = CleanerIssue(page_tenant_[p]);
    Result<PayloadRef> read =
        flash_.ReadExtent(PageAddress(p), options_.block_bytes, extent_pool_,
                          issue);
    if (read.ok()) {
      Result<Duration> moved =
          WriteInternalRef(owner, std::move(read.value()),
                           WriteStream::kRelocation,
                           /*allow_clean=*/false, issue);
      migrate = moved.ok() ? Status::Ok() : moved.status();
    } else {
      migrate = read.status();
    }
    if (!migrate.ok()) {
      break;
    }
    stats_.gc_relocations.Add();
    stats_.by_tenant.For(issue.tenant).relocations.Add();
  }
  if (!migrate.ok()) {
    // A failed migration is survivable — the cold data simply stays where it
    // is and the next check retries — but it must not fail silently: it can
    // be the first sign of a failing region.
    stats_.wear_level_failures.Add();
    SSMC_LOG(kWarning) << "static wear leveling: migrating sector " << coldest
                       << " failed: " << migrate.ToString();
  } else if (hot_[static_cast<size_t>(coldest)].valid_pages == 0) {
    if (EraseAndFree(static_cast<uint64_t>(coldest)).ok()) {
      stats_.wear_migrations.Add();
    }
  }
  if (obs_ != nullptr) {
    ObsCleanerSpan("wear-level", migrate_start,
                   static_cast<uint64_t>(coldest),
                   stats_.gc_relocations.value() - relocations_before);
  }
  wear_leveling_ = false;
}

Status FlashStore::CheckIndexConsistency() const {
  uint64_t free_count = 0;
  uint64_t victim_count = 0;
  uint64_t cold_count = 0;
  uint64_t occupied_count = 0;
  uint64_t non_bad = 0;
  for (uint64_t s = 0; s < hot_.size(); ++s) {
    const SectorMeta m = sector_meta(s);
    const bool usable = !m.active && !m.free && !m.bad;
    if (m.free) {
      free_count += 1;
    }
    if (!m.bad) {
      non_bad += 1;
    }
    const bool candidate = usable && m.dead_pages > 0;
    victim_count += candidate ? 1 : 0;
    if (victim_index_.Contains(s) != candidate) {
      return InternalError("victim index membership wrong for sector " +
                           std::to_string(s));
    }
    const bool cold = s < hot_sector_count_ && usable && m.dead_pages == 0 &&
                      m.valid_pages > 0;
    cold_count += cold ? 1 : 0;
    if (cold_index_.Contains(s) != cold) {
      return InternalError("cold index membership wrong for sector " +
                           std::to_string(s));
    }
    if (wear_index_ != nullptr) {
      occupied_count += usable ? 1 : 0;
      if (wear_index_->OccupiedContains(s) != usable) {
        return InternalError("wear occupied-set membership wrong for sector " +
                             std::to_string(s));
      }
    }
  }
  if (victim_index_.size() != victim_count) {
    return InternalError("victim index size mismatch");
  }
  if (cold_index_.size() != cold_count) {
    return InternalError("cold index size mismatch");
  }
  uint64_t pool_sum = 0;
  for (const FreeSectorPool& pool : free_pool_) {
    pool_sum += pool.size();
  }
  if (pool_sum != free_count || free_sector_count_ != free_count) {
    return InternalError("free-sector count mismatch");
  }
  if (wear_index_ != nullptr) {
    if (wear_index_->occupied_size() != occupied_count) {
      return InternalError("wear occupied-set size mismatch");
    }
    if (wear_index_->tracked_sectors() != non_bad) {
      return InternalError("wear erase-count tracker size mismatch");
    }
    const WearScanResult scan = ScanWearLevelState(SnapshotSectors(), flash_);
    if (wear_index_->has_sectors() &&
        (wear_index_->min_erases() != scan.min_erases ||
         wear_index_->max_erases() != scan.max_erases ||
         wear_index_->ColdestOccupied() != scan.coldest)) {
      return InternalError("wear tracker disagrees with linear scan");
    }
  }
  return Status::Ok();
}

double FlashStore::WriteAmplification() const {
  if (stats_.user_writes.value() == 0) {
    return 1.0;
  }
  return static_cast<double>(stats_.user_writes.value() +
                             stats_.gc_relocations.value()) /
         static_cast<double>(stats_.user_writes.value());
}

double FlashStore::TenantWriteAmplification(TenantId tenant) const {
  const TenantIoStats* lane = stats_.by_tenant.Find(tenant);
  if (lane == nullptr || lane->writes.value() == 0) {
    return 1.0;
  }
  return static_cast<double>(lane->writes.value() +
                             lane->relocations.value()) /
         static_cast<double>(lane->writes.value());
}

}  // namespace ssmc
