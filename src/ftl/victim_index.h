// Incrementally maintained indexes over FTL sector state.
//
// The FlashStore's hot paths — page allocation, cleaning-victim selection,
// free-sector take, cold-sector eviction, and static wear leveling — were
// originally full-device linear scans, so every write cost O(sectors) and
// the E7/E8/E9 sweeps scaled as O(ops x sectors). The structures here keep
// the same decisions available in O(1)/O(log N) amortized by updating small
// ordered containers at each metadata transition instead of rescanning.
//
// Bit-identical policy contract: every index reproduces *exactly* the choice
// the retired linear scan would have made, including tie-breaking (the scans
// kept the first, i.e. lowest-index, sector achieving the best score) and
// the floating-point arithmetic of the cost-benefit score. The linear scans
// are retained as reference oracles (PickCleaningVictim and the Scan*
// functions in flash_store.h); FlashStoreOptions::validate_indexes
// cross-checks every decision against them at runtime, and the differential
// property suite sweeps that mode across the full policy matrix.
//
// Known bound: cost-benefit exactness relies on distinct sector ages mapping
// to distinct doubles, which holds while simulated time stays below 2^52 ns
// (~52 days). All experiments run far below that; validation mode would
// surface a violation as a mismatch rather than silently diverging.
//
// All indexes store per-sector shadow nodes and are driven through Sync()
// calls: the caller reports a sector's current metadata and eligibility, and
// the index inserts/moves/removes the sector as needed. This keeps every
// transition (dead-page count change, activation, erase, retirement) a
// single call site in the FlashStore.

#ifndef SSMC_SRC_FTL_VICTIM_INDEX_H_
#define SSMC_SRC_FTL_VICTIM_INDEX_H_

#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "src/support/units.h"

namespace ssmc {

enum class CleanerPolicy { kGreedy, kCostBenefit };
enum class WearPolicy { kNone, kDynamic, kStatic };

// Per-bank pool of erased sectors, replacing the deque the allocator used to
// linear-scan. Two orders, matching the two allocator behaviors:
//  * wear_ordered = false (WearPolicy::kNone): LIFO — take the most recently
//    freed sector (the naive allocator that concentrates wear);
//  * wear_ordered = true (kDynamic/kStatic): least-worn first; among equally
//    worn sectors, the one freed earliest (the scan kept the first strict
//    minimum in insertion order). Erase counts are frozen while a sector
//    sits in the pool, so the ordering key never goes stale.
class FreeSectorPool {
 public:
  explicit FreeSectorPool(bool wear_ordered) : wear_ordered_(wear_ordered) {}

  void Add(uint64_t sector, uint64_t erase_count);
  // The sector Take() would remove, or -1 if the pool is empty.
  int64_t Peek() const;
  // Removes and returns the pick, or -1 if the pool is empty.
  int64_t Take();

  bool empty() const { return size() == 0; }
  uint64_t size() const { return wear_ordered_ ? wear_size_ : lifo_.size(); }

  // (sector, erase_count) pairs in insertion order — the exact sequence the
  // retired linear-scan allocator iterated. Used by the differential oracle
  // and tests only; costs O(n log n) when wear-ordered.
  std::vector<std::pair<uint64_t, uint64_t>> SnapshotInsertionOrder() const;

 private:
  // FIFO of (sector, seq) entries awaiting allocation at one erase count.
  // Drained from the front via a head cursor (amortized O(1), storage
  // reclaimed when the bucket empties and its map node is erased).
  struct WearBucket {
    std::vector<std::pair<uint64_t, uint64_t>> q;
    size_t head = 0;
    bool empty() const { return head == q.size(); }
  };

  bool wear_ordered_;
  uint64_t next_seq_ = 0;
  // wear_ordered_: per-erase-count FIFO buckets, keyed by erase count. The
  // retired flat set ordered entries by (erase_count, seq, sector); seq is
  // unique and assigned in insertion order, so within one erase count the
  // set's order was exactly FIFO and the sector tie-break was unreachable.
  // begin()->front is therefore the same pick, but an Add/Take touches a
  // handful of map nodes (one per *distinct* live erase count — wear
  // leveling keeps that band narrow) instead of rebalancing a tree node per
  // pooled sector.
  std::map<uint64_t, WearBucket> by_wear_;
  uint64_t wear_size_ = 0;
  // !wear_ordered_: (sector, erase_count, insertion_seq), back() next out.
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> lifo_;
};

// Index of cleaning candidates (sectors that are neither active, free, nor
// bad and hold at least one dead page), answering "which sector would the
// linear scan pick at time `now`" in O(pages_per_sector * log N).
//
//  * kGreedy: candidates bucketed by dead-page count; the pick is the
//    lowest-index sector in the highest non-empty bucket.
//  * kCostBenefit: score = age * (1-u) / (1+u) depends on the query time, so
//    no single time-independent order exists across utilizations. But within
//    a fixed valid-page count the score is monotone in age, so candidates
//    are bucketed by valid count and ordered by (last_write_time, sector)
//    inside each bucket; the pick reduces to comparing one representative
//    per bucket with the scan's exact double arithmetic. A per-bucket
//    by-index order handles the age clamp max(1, now - t): when even the
//    oldest candidate's age clamps to 1, the whole bucket ties and the scan
//    would keep the lowest sector index.
//
// Membership changes on nearly every FTL write (an overwrite moves the old
// page's sector between buckets), so the buckets are flat binary min-heaps
// with lazy deletion rather than ordered node-based sets: an update is a
// contiguous-array sift instead of red-black rebalancing over pointer-chased
// nodes, and a departed sector's entry is simply left behind to be pruned
// when it surfaces at the top of its heap (the per-sector Node spots stale
// entries). Heaps compact once stale entries outnumber live ones, so memory
// stays proportional to the live candidate set.
class VictimIndex {
 public:
  VictimIndex(CleanerPolicy policy, uint32_t pages_per_sector,
              uint64_t num_sectors);

  // Brings `sector`'s membership in line with its current metadata.
  // `candidate` must be (!active && !free && !bad && dead_pages > 0).
  void Sync(uint64_t sector, uint32_t valid_pages, uint32_t dead_pages,
            SimTime last_write_time, bool candidate);

  // The sector the linear scan would pick at `now`, or -1 if no candidate.
  int64_t Pick(SimTime now) const;

  bool Contains(uint64_t sector) const { return nodes_[sector].present; }
  uint64_t size() const { return size_; }

  // Advisory: begin pulling `sector`'s shadow node into cache ahead of a
  // Sync call (the node array is too large to stay resident).
  void Prefetch(uint64_t sector) const {
    __builtin_prefetch(&nodes_[sector], 1);
  }

 private:
  struct Node {
    uint32_t valid = 0;
    uint32_t dead = 0;
    SimTime last_write = 0;
    // Bumped on every Insert; a heap entry is live only if its stamped epoch
    // matches, so a sector re-indexed under identical keys cannot leave an
    // indistinguishable stale twin behind.
    uint32_t epoch = 0;
    bool present = false;
  };
  struct AgeEntry {
    SimTime last_write;
    uint64_t sector;
    uint32_t epoch;
    // Min-heap order: oldest write first, ties to the lowest sector index
    // (the ordering the old by_age set provided).
    bool operator>(const AgeEntry& o) const {
      return last_write != o.last_write ? last_write > o.last_write
                                        : sector > o.sector;
    }
  };
  struct IndexEntry {
    uint64_t sector;
    uint32_t epoch;
    bool operator>(const IndexEntry& o) const { return sector > o.sector; }
  };
  // Flat min-heaps with lazy deletion; stale entries pruned at the top.
  // Mutable because pruning inside the logically-const Pick() does not
  // change the abstract candidate set.
  struct AgeHeap {
    mutable std::vector<AgeEntry> heap;
    uint64_t live = 0;
  };
  struct IndexHeap {
    mutable std::vector<IndexEntry> heap;
    uint64_t live = 0;
  };

  void Remove(uint64_t sector);
  void Insert(uint64_t sector, uint32_t valid, uint32_t dead, SimTime t);

  // True if the heap entry still describes a live candidate.
  bool EntryLive(uint64_t sector, uint32_t epoch) const {
    const Node& node = nodes_[sector];
    return node.present && node.epoch == epoch;
  }

  // Drop stale entries off the top; return the min live entry or null.
  const AgeEntry* PruneAgeTop(uint32_t valid) const;
  const IndexEntry* PruneIndexTop(uint32_t bucket) const;

  void MaybeCompact(uint32_t bucket);

  CleanerPolicy policy_;
  uint32_t pages_per_sector_;
  std::vector<Node> nodes_;
  std::vector<IndexHeap> by_dead_;        // kGreedy: [dead] -> sectors.
  std::vector<AgeHeap> by_valid_age_;     // kCostBenefit: [valid].
  std::vector<IndexHeap> by_valid_index_; // kCostBenefit: [valid].
  uint64_t size_ = 0;
};

// Age-ordered index of fully-valid sectors in the hot bank range, feeding
// EvictColdSectorFromHotRange: the oldest (by last write; ties to the lowest
// sector index) eligible sector is the front of one ordered set.
class ColdSectorIndex {
 public:
  explicit ColdSectorIndex(uint64_t num_sectors) : nodes_(num_sectors) {}

  // `eligible` must be (in hot range && !active && !free && !bad &&
  // dead_pages == 0 && valid_pages > 0).
  void Sync(uint64_t sector, SimTime last_write_time, bool eligible);

  // Oldest eligible sector whose last write is at least `min_age` before
  // `now`, or -1. (The front of the index is the oldest overall, so if it is
  // too young every candidate is.)
  int64_t PickOlderThan(SimTime now, Duration min_age) const;

  bool Contains(uint64_t sector) const { return nodes_[sector].present; }
  uint64_t size() const { return by_age_.size(); }

 private:
  struct Node {
    SimTime last_write = 0;
    bool present = false;
  };
  std::vector<Node> nodes_;
  std::set<std::pair<SimTime, uint64_t>> by_age_;
};

// Running erase-count trackers feeding MaybeStaticWearLevel: the min/max
// erase count over non-retired sectors, and the coldest (least-erased,
// lowest-index) occupied sector — all O(log N) per erase instead of a
// full-device scan per wear check.
//
// Erase counts of occupied sectors are frozen (only EraseAndFree erases, and
// it runs on sectors leaving the occupied set), so the occupied set's keys
// never go stale between the erase notification and the follow-up Sync.
class WearIndex {
 public:
  explicit WearIndex(uint64_t num_sectors) : nodes_(num_sectors) {}

  // Registers a sector's initial erase count (construction time).
  void Seed(uint64_t sector, uint64_t erase_count);

  // Erase-count change notification (wired to FlashDevice's erase observer).
  // `now_bad` retires the sector from the trackers entirely.
  void OnEraseCountChanged(uint64_t sector, uint64_t new_count, bool now_bad);

  // `occupied` must be (!active && !free && !bad).
  void SyncOccupied(uint64_t sector, uint64_t erase_count, bool occupied);

  bool has_sectors() const { return !counts_.empty(); }
  uint64_t min_erases() const { return *counts_.begin(); }
  uint64_t max_erases() const { return *counts_.rbegin(); }
  // Lowest-index sector among the least-erased occupied ones, or -1.
  int64_t ColdestOccupied() const;

  bool OccupiedContains(uint64_t sector) const {
    return nodes_[sector].occupied;
  }
  uint64_t occupied_size() const { return occupied_.size(); }
  uint64_t tracked_sectors() const { return counts_.size(); }

 private:
  struct Node {
    uint64_t count = 0;       // Key under which the sector is tracked.
    bool tracked = false;     // In counts_.
    uint64_t occupied_key = 0;
    bool occupied = false;    // In occupied_.
  };
  std::vector<Node> nodes_;
  std::multiset<uint64_t> counts_;               // Non-bad sectors.
  std::set<std::pair<uint64_t, uint64_t>> occupied_;  // (count, sector).
};

}  // namespace ssmc

#endif  // SSMC_SRC_FTL_VICTIM_INDEX_H_
