#include "src/ftl/victim_index.h"

#include <algorithm>
#include <cassert>

namespace ssmc {

// --- FreeSectorPool -------------------------------------------------------

void FreeSectorPool::Add(uint64_t sector, uint64_t erase_count) {
  const uint64_t seq = next_seq_++;
  if (wear_ordered_) {
    by_wear_[erase_count].q.emplace_back(sector, seq);
    ++wear_size_;
  } else {
    lifo_.emplace_back(sector, erase_count, seq);
  }
}

int64_t FreeSectorPool::Peek() const {
  if (wear_ordered_) {
    if (wear_size_ == 0) {
      return -1;
    }
    const WearBucket& b = by_wear_.begin()->second;
    return static_cast<int64_t>(b.q[b.head].first);
  }
  if (lifo_.empty()) {
    return -1;
  }
  return static_cast<int64_t>(std::get<0>(lifo_.back()));
}

int64_t FreeSectorPool::Take() {
  if (wear_ordered_) {
    if (wear_size_ == 0) {
      return -1;
    }
    const auto it = by_wear_.begin();
    WearBucket& b = it->second;
    const int64_t sector = static_cast<int64_t>(b.q[b.head].first);
    if (++b.head == b.q.size()) {
      by_wear_.erase(it);
    }
    --wear_size_;
    return sector;
  }
  if (lifo_.empty()) {
    return -1;
  }
  const int64_t sector = static_cast<int64_t>(std::get<0>(lifo_.back()));
  lifo_.pop_back();
  return sector;
}

std::vector<std::pair<uint64_t, uint64_t>>
FreeSectorPool::SnapshotInsertionOrder() const {
  std::vector<std::tuple<uint64_t, uint64_t, uint64_t>> entries;  // (seq, sector, count)
  if (wear_ordered_) {
    entries.reserve(wear_size_);
    for (const auto& [count, bucket] : by_wear_) {
      for (size_t i = bucket.head; i < bucket.q.size(); ++i) {
        entries.emplace_back(bucket.q[i].second, bucket.q[i].first, count);
      }
    }
    std::sort(entries.begin(), entries.end());
  } else {
    entries.reserve(lifo_.size());
    for (const auto& [sector, count, seq] : lifo_) {
      entries.emplace_back(seq, sector, count);
    }
    // lifo_ only grows at the back and shrinks from the back, so it is
    // already in insertion order.
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(entries.size());
  for (const auto& [seq, sector, count] : entries) {
    out.emplace_back(sector, count);
  }
  return out;
}

// --- VictimIndex ----------------------------------------------------------

VictimIndex::VictimIndex(CleanerPolicy policy, uint32_t pages_per_sector,
                         uint64_t num_sectors)
    : policy_(policy), pages_per_sector_(pages_per_sector),
      nodes_(num_sectors) {
  assert(pages_per_sector_ > 0);
  if (policy_ == CleanerPolicy::kGreedy) {
    by_dead_.resize(pages_per_sector_ + 1);
  } else {
    // Candidates have dead > 0, so valid ranges over [0, pages_per_sector).
    by_valid_age_.resize(pages_per_sector_);
    by_valid_index_.resize(pages_per_sector_);
  }
}

const VictimIndex::AgeEntry* VictimIndex::PruneAgeTop(uint32_t valid) const {
  std::vector<AgeEntry>& h = by_valid_age_[valid].heap;
  while (!h.empty() && !EntryLive(h.front().sector, h.front().epoch)) {
    std::pop_heap(h.begin(), h.end(), std::greater<AgeEntry>());
    h.pop_back();
  }
  return h.empty() ? nullptr : &h.front();
}

const VictimIndex::IndexEntry* VictimIndex::PruneIndexTop(
    uint32_t bucket) const {
  std::vector<IndexEntry>& h = (policy_ == CleanerPolicy::kGreedy
                                    ? by_dead_[bucket]
                                    : by_valid_index_[bucket])
                                   .heap;
  while (!h.empty() && !EntryLive(h.front().sector, h.front().epoch)) {
    std::pop_heap(h.begin(), h.end(), std::greater<IndexEntry>());
    h.pop_back();
  }
  return h.empty() ? nullptr : &h.front();
}

void VictimIndex::MaybeCompact(uint32_t bucket) {
  // Rebuild a heap once stale entries outnumber live ones (plus a floor so
  // small buckets never bother). Heap order does not care about the order of
  // the surviving entries, so a filter + make_heap is enough; the epoch
  // check keeps exactly one entry per live sector, so this always converges.
  constexpr size_t kFloor = 64;
  auto compact = [this](auto& bucket_heap) {
    auto& h = bucket_heap.heap;
    if (h.size() <= 2 * bucket_heap.live + kFloor) {
      return;
    }
    std::erase_if(h, [this](const auto& e) {
      return !EntryLive(e.sector, e.epoch);
    });
    std::make_heap(h.begin(), h.end(),
                   std::greater<std::decay_t<decltype(h[0])>>());
  };
  if (policy_ == CleanerPolicy::kGreedy) {
    compact(by_dead_[bucket]);
  } else {
    compact(by_valid_age_[bucket]);
    compact(by_valid_index_[bucket]);
  }
}

void VictimIndex::Insert(uint64_t sector, uint32_t valid, uint32_t dead,
                         SimTime t) {
  Node& node = nodes_[sector];
  assert(!node.present);
  assert(dead > 0 && dead <= pages_per_sector_);
  node.valid = valid;
  node.dead = dead;
  node.last_write = t;
  node.epoch += 1;
  node.present = true;
  if (policy_ == CleanerPolicy::kGreedy) {
    IndexHeap& b = by_dead_[dead];
    b.heap.push_back(IndexEntry{sector, node.epoch});
    std::push_heap(b.heap.begin(), b.heap.end(), std::greater<IndexEntry>());
    b.live += 1;
    MaybeCompact(dead);
  } else {
    AgeHeap& a = by_valid_age_[valid];
    a.heap.push_back(AgeEntry{t, sector, node.epoch});
    std::push_heap(a.heap.begin(), a.heap.end(), std::greater<AgeEntry>());
    a.live += 1;
    IndexHeap& i = by_valid_index_[valid];
    i.heap.push_back(IndexEntry{sector, node.epoch});
    std::push_heap(i.heap.begin(), i.heap.end(), std::greater<IndexEntry>());
    i.live += 1;
    MaybeCompact(valid);
  }
  size_ += 1;
}

void VictimIndex::Remove(uint64_t sector) {
  Node& node = nodes_[sector];
  assert(node.present);
  // Lazy: clearing `present` invalidates the heap entries in place; they are
  // pruned when they surface or at the next compaction.
  if (policy_ == CleanerPolicy::kGreedy) {
    by_dead_[node.dead].live -= 1;
  } else {
    by_valid_age_[node.valid].live -= 1;
    by_valid_index_[node.valid].live -= 1;
  }
  node.present = false;
  size_ -= 1;
}

void VictimIndex::Sync(uint64_t sector, uint32_t valid_pages,
                       uint32_t dead_pages, SimTime last_write_time,
                       bool candidate) {
  Node& node = nodes_[sector];
  if (node.present) {
    if (candidate && node.valid == valid_pages && node.dead == dead_pages &&
        node.last_write == last_write_time) {
      return;  // Already indexed under the right keys.
    }
    Remove(sector);
  }
  if (candidate) {
    Insert(sector, valid_pages, dead_pages, last_write_time);
  }
}

int64_t VictimIndex::Pick(SimTime now) const {
  if (policy_ == CleanerPolicy::kGreedy) {
    // The scan kept the first sector with the strictly highest dead count:
    // highest non-empty bucket, lowest index within it.
    for (uint32_t dead = pages_per_sector_; dead >= 1; --dead) {
      if (by_dead_[dead].live == 0) {
        continue;
      }
      const IndexEntry* top = PruneIndexTop(dead);
      assert(top != nullptr);
      return static_cast<int64_t>(top->sector);
    }
    return -1;
  }

  // Cost-benefit: one representative per valid-count bucket, scored with the
  // scan's exact arithmetic; ties across buckets resolve to the lowest
  // sector index, as the ascending-index scan did.
  int64_t best = -1;
  double best_score = -1;
  for (uint32_t valid = 0; valid < pages_per_sector_; ++valid) {
    if (by_valid_age_[valid].live == 0) {
      continue;
    }
    const AgeEntry* oldest_entry = PruneAgeTop(valid);
    assert(oldest_entry != nullptr);
    const SimTime oldest = oldest_entry->last_write;
    uint64_t candidate;
    SimTime t;
    if (now - oldest <= 1) {
      // Even the oldest candidate's age clamps to max(1, now - t) == 1, so
      // every sector in this bucket scores identically and the scan would
      // keep the lowest index.
      candidate = PruneIndexTop(valid)->sector;
      t = nodes_[candidate].last_write;
    } else {
      // Scores are monotone in age within the bucket, so the oldest wins;
      // the (last_write, sector) heap order already breaks exact-age ties by
      // index.
      candidate = oldest_entry->sector;
      t = oldest;
    }
    const double u = static_cast<double>(valid) /
                     static_cast<double>(pages_per_sector_);
    const double age =
        static_cast<double>(std::max<SimTime>(1, now - t));
    const double score = age * (1.0 - u) / (1.0 + u);
    if (score > best_score ||
        (score == best_score && static_cast<int64_t>(candidate) < best)) {
      best_score = score;
      best = static_cast<int64_t>(candidate);
    }
  }
  return best;
}

// --- ColdSectorIndex ------------------------------------------------------

void ColdSectorIndex::Sync(uint64_t sector, SimTime last_write_time,
                           bool eligible) {
  Node& node = nodes_[sector];
  if (node.present) {
    if (eligible && node.last_write == last_write_time) {
      return;
    }
    by_age_.erase({node.last_write, sector});
    node.present = false;
  }
  if (eligible) {
    by_age_.emplace(last_write_time, sector);
    node.last_write = last_write_time;
    node.present = true;
  }
}

int64_t ColdSectorIndex::PickOlderThan(SimTime now, Duration min_age) const {
  if (by_age_.empty()) {
    return -1;
  }
  const auto& [oldest, sector] = *by_age_.begin();
  if (now - oldest < min_age) {
    return -1;
  }
  return static_cast<int64_t>(sector);
}

// --- WearIndex ------------------------------------------------------------

void WearIndex::Seed(uint64_t sector, uint64_t erase_count) {
  Node& node = nodes_[sector];
  assert(!node.tracked);
  node.count = erase_count;
  node.tracked = true;
  counts_.insert(erase_count);
}

void WearIndex::OnEraseCountChanged(uint64_t sector, uint64_t new_count,
                                    bool now_bad) {
  Node& node = nodes_[sector];
  if (node.tracked) {
    counts_.erase(counts_.find(node.count));
    node.tracked = false;
  }
  if (!now_bad) {
    counts_.insert(new_count);
    node.count = new_count;
    node.tracked = true;
  }
  if (node.occupied) {
    // Keep the occupied key fresh (a retiring sector leaves outright; the
    // follow-up SyncOccupied(false) then finds it already gone).
    occupied_.erase({node.occupied_key, sector});
    node.occupied = false;
    if (!now_bad) {
      occupied_.emplace(new_count, sector);
      node.occupied_key = new_count;
      node.occupied = true;
    }
  }
}

void WearIndex::SyncOccupied(uint64_t sector, uint64_t erase_count,
                             bool occupied) {
  Node& node = nodes_[sector];
  if (node.occupied) {
    if (occupied && node.occupied_key == erase_count) {
      return;
    }
    occupied_.erase({node.occupied_key, sector});
    node.occupied = false;
  }
  if (occupied) {
    occupied_.emplace(erase_count, sector);
    node.occupied_key = erase_count;
    node.occupied = true;
  }
}

int64_t WearIndex::ColdestOccupied() const {
  if (occupied_.empty()) {
    return -1;
  }
  return static_cast<int64_t>(occupied_.begin()->second);
}

}  // namespace ssmc
