// ResidencyManager — the single authority on tier placement across the
// machine's memory hierarchy (paper Section 3.3: the physical storage
// manager's core job is "migrating data between DRAM and flash"; Section 5
// anticipates additional byte-addressable non-volatile tiers between them).
//
// Before this layer existed, residency state was smeared across the stack:
// the write buffer demoted dirty blocks, the file system decided
// buffered-vs-flash per access, the VM ran a private clean-page reclaim
// FIFO, and nothing could *promote* a hot read-mostly flash block into
// DRAM. The ResidencyManager centralizes that:
//
//  * it answers, for any logical block, where it currently lives
//    (DRAM-dirty, DRAM-clean-cached, NVM-cached, flash, hole) — Resolve();
//  * it tracks per-block access heat as sim-time-decayed touch counts, fed
//    by file-system reads/writes and VM faults;
//  * it owns a table of clean cache tiers — tier 0 the DRAM clean cache,
//    tier 1 the optional NVM cache — each with its own page budget and LRU,
//    with heat-driven promotion/demotion between adjacent tiers: blocks
//    enter the hierarchy from flash into the bottom cache tier, climb one
//    tier at a time as their heat crosses that tier's threshold, and fall
//    one tier at a time under capacity pressure (DRAM tail demotes into
//    NVM; the NVM tail drops — the flash copy stays authoritative);
//  * it arbitrates the shared DRAM budget: VM page frames, dirty buffer
//    pages and the clean cache all draw from one pool (the paper's
//    single-level-store premise), with clean pages demoted first.
//
// Migration policies (MachineConfig::residency.policy):
//  * kWriteBufferOnly — today's behavior, bit-identical: dirty blocks
//    buffer in DRAM and flush to flash; clean data always reads from
//    flash. The pre-residency code path is preserved under this policy and
//    doubles as the differential oracle (MemoryFsOptions::
//    validate_residency), the same technique PR 1 used for the FTL indexes.
//  * kReadPromote — flash blocks whose decayed heat crosses
//    promote_threshold are promoted into the clean cache. Promotion flash
//    reads are issued cleaner-class and non-blocking (background
//    IoRequests), so promotion never stalls the foreground read that
//    triggered it; subsequent reads of the block run at DRAM speed.
//  * kAggressive — promote on the second raw touch, and additionally
//    forward cold-data hints to the FlashStore: blocks whose heat has
//    decayed below cold_hint_threshold flush on the relocation (cold)
//    stream, pre-segregating write-once data into the cold banks.
//
// The clean cache holds only re-fetchable data (the flash copy stays
// authoritative), so demotion is free: under any DRAM pressure the cache
// shrinks before dirty data or VM frames are touched.

#ifndef SSMC_SRC_STORAGE_RESIDENCY_H_
#define SSMC_SRC_STORAGE_RESIDENCY_H_

#include <cstdint>
#include <list>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/ftl/flash_store.h"
#include "src/sim/io_stats.h"
#include "src/sim/stats.h"
#include "src/storage/block_key.h"
#include "src/support/status.h"
#include "src/support/units.h"

namespace ssmc {

class Obs;
class StorageManager;
class WriteBuffer;

// Which migration policy the residency manager runs.
enum class ResidencyPolicy {
  kWriteBufferOnly = 0,  // Dirty buffering only — byte-identical baseline.
  kReadPromote = 1,      // Heat-threshold promotion into the clean cache.
  kAggressive = 2,       // Promote-on-second-touch + cold demotion hints.
};

const char* ResidencyPolicyName(ResidencyPolicy policy);
// Parses "write-buffer-only" / "read-promote" / "aggressive" (also accepts
// the bare enum spellings). Returns false on an unknown name.
bool ParseResidencyPolicy(std::string_view name, ResidencyPolicy* out);

struct ResidencyOptions {
  ResidencyPolicy policy = ResidencyPolicy::kWriteBufferOnly;
  // Half-life of the exponential touch-count decay. A block touched once
  // counts 0.5 after one half-life; the classic 30 s working-set window.
  Duration heat_half_life = 30 * kSecond;
  // kReadPromote: promote when the decayed touch count reaches this.
  double promote_threshold = 2.0;
  // kAggressive: promote when the raw (undecayed) touch count reaches this.
  uint64_t aggressive_touches = 2;
  // Cap on the clean cache as a fraction of total DRAM pages. The cache
  // recycles its own LRU tail beyond this; it never squeezes dirty data or
  // VM frames to grow.
  double max_clean_fraction = 0.5;
  // kAggressive: flushes of blocks with decayed heat below this go out on
  // the relocation (cold) write stream.
  double cold_hint_threshold = 0.5;
  // Heat table size bound; crossing it sweeps entries colder than ~0.25.
  uint64_t max_heat_entries = 65536;
  // --- NVM tier (active only when the machine has NVM capacity) -----------
  // Cap on the NVM cache as a fraction of total NVM pages.
  double max_nvm_fraction = 1.0;
  // Heat needed to enter the NVM tier from flash. The default (1.0) admits
  // on first touch, so the combined DRAM+NVM ladder approximates a big LRU
  // — what the Ju et al. analytical oracle (tier_model.h) models.
  double nvm_promote_threshold = 1.0;
};

// Where a logical block currently lives.
enum class Residency : uint8_t {
  kHole = 0,   // Never written (or released): reads are zero fill.
  kDirty = 1,  // In the DRAM write buffer, not yet flushed.
  kClean = 2,  // In the DRAM clean cache; the flash copy is authoritative.
  kFlash = 3,  // Only in flash.
  kNvm = 4,    // In the NVM cache tier; the flash copy is authoritative.
};

class ResidencyManager {
 public:
  // A consumer of DRAM pages that can give some back under pressure (the VM
  // address spaces: their clean file-backed copies are re-fetchable).
  class ReclaimSource {
   public:
    virtual ~ReclaimSource() = default;
    // Frees one DRAM page back to the storage manager if possible.
    virtual bool TryReclaimOne() = 0;
  };

  ResidencyManager(StorageManager& storage, ResidencyOptions options);
  // Frees the clean cache's DRAM pages and detaches any Obs collector.
  ~ResidencyManager();

  ResidencyManager(const ResidencyManager&) = delete;
  ResidencyManager& operator=(const ResidencyManager&) = delete;

  const ResidencyOptions& options() const { return options_; }
  ResidencyPolicy policy() const { return options_.policy; }
  // True when any migration beyond dirty buffering is active. Everything
  // the enabled() paths do is skipped under kWriteBufferOnly, which is what
  // keeps the default byte-identical to the pre-residency simulator.
  bool enabled() const {
    return options_.policy != ResidencyPolicy::kWriteBufferOnly;
  }

  // --- Wiring -------------------------------------------------------------
  // The dirty side of the residency map is the file system's write buffer;
  // the file system binds it at construction (null unbinds).
  void BindDirtyBackend(WriteBuffer* buffer) { dirty_backend_ = buffer; }
  // Called by the file system's destructor: drops the clean cache and heat
  // (their keys die with the namespace) and unbinds the dirty backend.
  void DetachFilesystem();

  // VM address spaces register as reclaim sources so DRAM pressure can be
  // served from any space's clean pages (single-level-store competition).
  void RegisterSource(ReclaimSource* source);
  void DropSource(ReclaimSource* source);

  // The tenant whose access is currently driving the manager (set by the
  // file system alongside its own current tenant). Promotions it triggers —
  // and the DRAM the promoted pages occupy — are billed to this tenant.
  void set_current_tenant(TenantId tenant) { tenant_ = tenant; }
  TenantId current_tenant() const { return tenant_; }

  // --- Placement ----------------------------------------------------------
  // Where does this block live? `flash_block` is the file system's mapping
  // for the block (-1 = none). Precedence over the generalized tier table:
  // dirty buffer, then each cache tier top-down (DRAM, then NVM), then
  // flash, then hole. Pure bookkeeping: charges nothing.
  Residency Resolve(const BlockKey& key, int64_t flash_block) const;

  bool CleanCached(const BlockKey& key) const {
    return tiers_[kDramTier].entries.find(key) !=
           tiers_[kDramTier].entries.end();
  }
  uint64_t clean_pages() const { return tiers_[kDramTier].entries.size(); }
  bool NvmCached(const BlockKey& key) const {
    return has_nvm_tier() && tiers_[kNvmTier].entries.find(key) !=
                                 tiers_[kNvmTier].entries.end();
  }
  uint64_t nvm_pages() const {
    return has_nvm_tier() ? tiers_[kNvmTier].entries.size() : 0;
  }
  // True when the machine has NVM capacity behind this manager (the tier
  // exists; whether it fills depends on the policy being enabled).
  bool has_nvm_tier() const { return tiers_.size() > kNvmTier; }

  // Per-tier occupancy snapshot (benches, tests).
  struct TierStatus {
    Residency residency = Residency::kClean;  // kClean or kNvm.
    uint64_t capacity_pages = 0;
    uint64_t cached_pages = 0;
  };
  std::vector<TierStatus> Tiers() const;

  // Reads bytes from a clean-cached block (DRAM access, charged to the
  // caller's clock). Refreshes the entry's LRU position. NOT_FOUND if the
  // block is not cached.
  Status ReadClean(const BlockKey& key, uint64_t offset,
                   std::span<uint8_t> out);

  // Reads bytes from an NVM-cached block: a foreground blocking read through
  // the NVM device's bank scheduler, billed to the current tenant. Refreshes
  // the entry's LRU position. NOT_FOUND if the block is not in the NVM tier.
  Status ReadNvm(const BlockKey& key, uint64_t offset, std::span<uint8_t> out);

  // Drops one / every cached block from every tier (content changed, file
  // released, battery-backed DRAM lost). The flash copy is authoritative,
  // so nothing is lost.
  void InvalidateClean(const BlockKey& key);
  void InvalidateAllClean();

  // --- Heat & migration ---------------------------------------------------
  // Access notifications from the file system. OnFlashRead may promote the
  // block into the bottom cache tier (policy-dependent): the NVM tier when
  // one exists, else straight into the DRAM clean cache. The promotion
  // flash read is issued cleaner-class non-blocking.
  void TouchRead(const BlockKey& key, SimTime now);
  void TouchWrite(const BlockKey& key, SimTime now);
  void OnFlashRead(const BlockKey& key, uint64_t flash_block, SimTime now);
  // After a read served from the NVM tier: touches the block and, when its
  // heat crosses the DRAM tier's threshold, promotes it one tier up (the
  // payload moves by reference; the NVM page returns to the pool).
  void OnNvmRead(const BlockKey& key, SimTime now);

  // A VM fault is about to map this flash block in place. Returns true if
  // the block is hot enough that the VM should copy it to DRAM instead
  // (promotion through the fault path: later accesses run at DRAM speed).
  bool NoteVmFault(const BlockKey& key, SimTime now);

  // Which write stream a flush of this block should use. kAggressive routes
  // heat-cold blocks onto the relocation stream (FlashStore's cold banks);
  // every other policy returns kUser.
  WriteStream FlushStream(const BlockKey& key, SimTime now);

  // Drops the heat entry (file block released).
  void ForgetHeat(const BlockKey& key);
  // Decayed touch count as of `now` (0 if never touched).
  double HeatOf(const BlockKey& key, SimTime now) const;

  // --- Shared DRAM budget -------------------------------------------------
  // Allocates a DRAM page, applying migration pressure when the pool is
  // dry, in order: (1) demote clean-cache LRU pages [enabled policies],
  // (2) the requester's own reclaimable pages (exactly the historical VM
  // reclaim loop), (3) other registered sources' pages [enabled policies].
  // `requester` may be null (the write buffer has nothing to reclaim).
  // RESOURCE_EXHAUSTED when every avenue is spent.
  Result<uint64_t> AllocateDramPage(ReclaimSource* requester);

  // Per-tenant residency attribution: a promotion is billed to the tenant
  // whose read crossed the heat threshold, a clean hit to the reader.
  struct TenantResidency {
    Counter promotions;
    Counter promoted_bytes;
    Counter clean_hits;
    Counter clean_hit_bytes;
    Counter nvm_hits;
    Counter nvm_hit_bytes;

    void Merge(const TenantResidency& other) {
      promotions.Merge(other.promotions);
      promoted_bytes.Merge(other.promoted_bytes);
      clean_hits.Merge(other.clean_hits);
      clean_hit_bytes.Merge(other.clean_hit_bytes);
      nvm_hits.Merge(other.nvm_hits);
      nvm_hit_bytes.Merge(other.nvm_hit_bytes);
    }
  };

  struct Stats {
    Counter touches;                 // Heat updates (reads+writes+faults).
    Counter promotions;              // Flash blocks promoted to clean cache.
    Counter promoted_bytes;
    Counter clean_hits;              // Reads served from the clean cache.
    Counter clean_hit_bytes;
    Counter demotions_pressure;      // Clean pages dropped for DRAM space.
    Counter demotions_invalidated;   // Cached pages dropped by invalidation.
    Counter cold_stream_hints;       // Flushes routed to the cold stream.
    Counter vm_promote_faults;       // VM faults told to copy, not map.
    // NVM tier traffic (all zero without NVM).
    Counter nvm_promotions;          // Flash blocks admitted into the NVM tier.
    Counter nvm_promoted_bytes;
    Counter nvm_hits;                // Reads served from the NVM tier.
    Counter nvm_hit_bytes;
    Counter nvm_to_dram_promotions;  // Blocks climbing NVM -> DRAM.
    Counter demotions_to_nvm;        // DRAM tail pages demoted into NVM.
    TenantTable<TenantResidency> by_tenant;
  };
  const Stats& stats() const { return stats_; }

  // Observability (nullable; null detaches): a "residency" trace track with
  // promotion spans and demotion instants, a stats mirror collector
  // (clean-cache size and heat-table size as gauges), and heat histograms
  // sampled at promotion and flush decisions (x100 fixed point).
  void AttachObs(Obs* obs);

 private:
  // Indexes into tiers_: adjacent tiers differ by one. Tier 0 is the
  // fastest; the last cache tier borders flash.
  static constexpr size_t kDramTier = 0;
  static constexpr size_t kNvmTier = 1;

  struct CacheEntry {
    uint64_t page = 0;  // DRAM page index (tier 0) or NVM page (tier 1).
    TenantId tenant = kDefaultTenant;  // Who the promotion was billed to;
                                       // this page is their share.
    std::list<BlockKey>::iterator lru_it;  // Position in the tier's LRU.
  };
  // One clean cache tier. Entries are exclusive across tiers: a block lives
  // in at most one, moving between adjacent tiers as its heat changes.
  struct CacheTier {
    Residency residency = Residency::kClean;  // What Resolve reports.
    uint64_t capacity_pages = 0;              // Per-tier budget.
    std::unordered_map<BlockKey, CacheEntry, BlockKeyHash> entries;
    std::list<BlockKey> lru;  // Front = least recently used.
  };

  struct Heat {
    double decayed = 0;  // Exponentially decayed touch count.
    uint64_t raw = 0;    // Lifetime touches (kAggressive trigger).
    SimTime last = 0;    // When `decayed` was last brought current.
  };

  // Decays `h` to `now` and returns the current count.
  double DecayTo(Heat& h, SimTime now) const;
  // Records one touch; returns the decayed count after it.
  double Touch(const BlockKey& key, SimTime now);
  // Admission test for the DRAM tier (the historical promote rule).
  bool ShouldPromote(const Heat& h) const;
  // Admission test for the bottom cache tier from flash: the NVM tier's
  // (lower) threshold when the tier exists, else the DRAM rule.
  bool ShouldAdmitFromFlash(const Heat& h) const;
  // Promotes a flash block into the bottom cache tier.
  void PromoteFromFlash(const BlockKey& key, uint64_t flash_block,
                        SimTime now);
  // Moves an NVM-tier entry one tier up into the DRAM clean cache.
  void PromoteNvmToDram(const BlockKey& key, SimTime now);
  // Drops (or, for the DRAM tier with an NVM tier below, demotes) the
  // tier's LRU entry; false if the tier is empty.
  bool DemoteOne(size_t tier, bool pressure);
  bool DemoteOneClean(bool pressure) { return DemoteOne(kDramTier, pressure); }
  void EraseCacheEntry(
      CacheTier& tier,
      std::unordered_map<BlockKey, CacheEntry, BlockKeyHash>::iterator it);
  // Frees `entry.page` back to the allocator owning `tier`'s pages.
  void FreeTierPage(const CacheTier& tier, uint64_t page);
  // Allocates a page for `tier`, recycling the tier's own LRU tail at its
  // budget. Failure (pool and tail both dry) returns !ok.
  Result<uint64_t> AllocateTierPage(size_t tier);
  uint64_t MaxCleanPages() const;

  StorageManager& storage_;
  ResidencyOptions options_;
  TenantId tenant_ = kDefaultTenant;
  WriteBuffer* dirty_backend_ = nullptr;
  std::vector<ReclaimSource*> sources_;  // Registration order (determinism).

  // Tier table: [0] the DRAM clean cache, [1] the NVM cache when the
  // machine has NVM capacity. Sized at construction.
  std::vector<CacheTier> tiers_;
  std::unordered_map<BlockKey, Heat, BlockKeyHash> heat_;

  Stats stats_;
  Obs* obs_ = nullptr;
  int obs_track_ = 0;
  Histogram* promote_heat_ = nullptr;  // Owned by the Obs registry.
  Histogram* flush_heat_ = nullptr;
};

}  // namespace ssmc

#endif  // SSMC_SRC_STORAGE_RESIDENCY_H_
