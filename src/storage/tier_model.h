// Closed-form steady-state hit-rate model for the tiered clean cache
// (the E16 analytical oracle).
//
// Ju et al., "Performance Analysis of N-Tier Heterogeneous Memory Systems"
// (arXiv:1607.00714), analyze LRU tier hierarchies under independent-
// reference Zipf traffic using Che's characteristic-time approximation: an
// LRU cache of C slots behaves as if each object stays resident for a fixed
// time T(C) after its last reference, where T solves
//
//     C = sum_i (1 - exp(-p_i * T))
//
// and object i's hit probability is 1 - exp(-p_i * T). An exclusive
// two-level ladder (DRAM over NVM, demote-on-pressure, promote-on-hit —
// what ResidencyManager runs with nvm_promote_threshold = 1) holds the
// C1 + C2 most-recently-used blocks, so its combined hit rate is that of
// one LRU of C1 + C2 slots, and the DRAM share alone is Che(C1).
//
// The oracle is exact only in the fluid limit (large catalogs, stationary
// IRM traffic); bench_e16_nvm checks the simulator lands within 5%.

#ifndef SSMC_SRC_STORAGE_TIER_MODEL_H_
#define SSMC_SRC_STORAGE_TIER_MODEL_H_

#include <cstdint>
#include <vector>

namespace ssmc {

// Zipf(s) popularity over n objects: p_i proportional to 1 / (i+1)^s,
// normalized to sum to 1. s = 0 is uniform.
std::vector<double> ZipfPopularity(uint64_t n, double s);

// Solves Che's fixed point sum_i (1 - exp(-p_i * T)) = C for T by bisection.
// Requires 0 < C < popularity.size(); returns 0 when C == 0.
double CheCharacteristicTime(const std::vector<double>& popularity,
                             double cache_slots);

// Steady-state hit rate of one LRU cache of `cache_slots` slots under IRM
// traffic with the given popularity: sum_i p_i * (1 - exp(-p_i * T)).
// Clamped to 1.0 when the cache holds the whole catalog.
double LruHitRate(const std::vector<double>& popularity, double cache_slots);

struct TieredHitRates {
  double dram = 0;      // Served by the C1-slot DRAM tier.
  double nvm = 0;       // Served by the NVM tier: Che(C1+C2) - Che(C1).
  double combined = 0;  // Any cache tier (= 1 - flash fraction).
};

// Exclusive two-tier LRU ladder of C1 DRAM slots over C2 NVM slots.
TieredHitRates TieredLruHitRates(const std::vector<double>& popularity,
                                 double dram_slots, double nvm_slots);

}  // namespace ssmc

#endif  // SSMC_SRC_STORAGE_TIER_MODEL_H_
