// BlockKey — the identity of one logical file block, (file id, block index).
//
// This is the key space shared by every layer that tracks where a block
// lives: the write buffer (dirty DRAM), the residency manager (clean DRAM
// cache + heat), and the file system's flash block map. Lives in its own
// header so those layers can share it without including each other.

#ifndef SSMC_SRC_STORAGE_BLOCK_KEY_H_
#define SSMC_SRC_STORAGE_BLOCK_KEY_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace ssmc {

// Identifies one file block: (file id, block index within the file).
struct BlockKey {
  uint64_t file_id = 0;
  uint64_t block_index = 0;

  bool operator==(const BlockKey& other) const {
    return file_id == other.file_id && block_index == other.block_index;
  }
};

struct BlockKeyHash {
  size_t operator()(const BlockKey& k) const {
    // Simple mix; file ids are small and block indices dense.
    return std::hash<uint64_t>()(k.file_id * 0x9E3779B97F4A7C15ULL ^
                                 k.block_index);
  }
};

}  // namespace ssmc

#endif  // SSMC_SRC_STORAGE_BLOCK_KEY_H_
