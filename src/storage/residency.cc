#include "src/storage/residency.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "src/obs/obs.h"
#include "src/storage/storage_manager.h"
#include "src/storage/write_buffer.h"

namespace ssmc {

const char* ResidencyPolicyName(ResidencyPolicy policy) {
  switch (policy) {
    case ResidencyPolicy::kWriteBufferOnly:
      return "write-buffer-only";
    case ResidencyPolicy::kReadPromote:
      return "read-promote";
    case ResidencyPolicy::kAggressive:
      return "aggressive";
  }
  return "unknown";
}

bool ParseResidencyPolicy(std::string_view name, ResidencyPolicy* out) {
  if (name == "write-buffer-only" || name == "kWriteBufferOnly") {
    *out = ResidencyPolicy::kWriteBufferOnly;
    return true;
  }
  if (name == "read-promote" || name == "kReadPromote") {
    *out = ResidencyPolicy::kReadPromote;
    return true;
  }
  if (name == "aggressive" || name == "kAggressive") {
    *out = ResidencyPolicy::kAggressive;
    return true;
  }
  return false;
}

ResidencyManager::ResidencyManager(StorageManager& storage,
                                   ResidencyOptions options)
    : storage_(storage), options_(options) {
  assert(options_.heat_half_life > 0);
}

ResidencyManager::~ResidencyManager() {
  InvalidateAllClean();
  if (obs_ != nullptr) {
    obs_->metrics().FlushAndRemoveCollector("residency");
  }
}

void ResidencyManager::DetachFilesystem() {
  dirty_backend_ = nullptr;
  InvalidateAllClean();
  heat_.clear();
}

void ResidencyManager::RegisterSource(ReclaimSource* source) {
  if (std::find(sources_.begin(), sources_.end(), source) == sources_.end()) {
    sources_.push_back(source);
  }
}

void ResidencyManager::DropSource(ReclaimSource* source) {
  sources_.erase(std::remove(sources_.begin(), sources_.end(), source),
                 sources_.end());
}

Residency ResidencyManager::Resolve(const BlockKey& key,
                                    int64_t flash_block) const {
  if (dirty_backend_ != nullptr && dirty_backend_->Contains(key)) {
    return Residency::kDirty;
  }
  if (clean_.find(key) != clean_.end()) {
    return Residency::kClean;
  }
  if (flash_block >= 0) {
    return Residency::kFlash;
  }
  return Residency::kHole;
}

Status ResidencyManager::ReadClean(const BlockKey& key, uint64_t offset,
                                   std::span<uint8_t> out) {
  auto it = clean_.find(key);
  if (it == clean_.end()) {
    return NotFoundError("block not clean-cached");
  }
  if (offset + out.size() > storage_.page_bytes()) {
    return OutOfRangeError("clean-cache read exceeds block bounds");
  }
  // Refresh LRU: splice the entry to the MRU end.
  clean_lru_.splice(clean_lru_.end(), clean_lru_, it->second.lru_it);
  storage_.ReadPagePayload(it->second.dram_page, offset, out);
  stats_.clean_hits.Add();
  stats_.clean_hit_bytes.Add(out.size());
  TenantResidency& lane = stats_.by_tenant.For(tenant_);
  lane.clean_hits.Add();
  lane.clean_hit_bytes.Add(out.size());
  return Status::Ok();
}

void ResidencyManager::EraseCleanEntry(
    std::unordered_map<BlockKey, CleanEntry, BlockKeyHash>::iterator it) {
  (void)storage_.FreeDramPage(it->second.dram_page);
  clean_lru_.erase(it->second.lru_it);
  clean_.erase(it);
}

void ResidencyManager::InvalidateClean(const BlockKey& key) {
  auto it = clean_.find(key);
  if (it == clean_.end()) {
    return;
  }
  stats_.demotions_invalidated.Add();
  EraseCleanEntry(it);
}

void ResidencyManager::InvalidateAllClean() {
  stats_.demotions_invalidated.Add(clean_.size());
  for (auto& [key, entry] : clean_) {
    (void)storage_.FreeDramPage(entry.dram_page);
  }
  clean_.clear();
  clean_lru_.clear();
}

bool ResidencyManager::DemoteOneClean(bool pressure) {
  if (clean_lru_.empty()) {
    return false;
  }
  auto it = clean_.find(clean_lru_.front());
  assert(it != clean_.end());
  if (pressure) {
    stats_.demotions_pressure.Add();
    if (obs_ != nullptr) {
      obs_->tracer().Instant(obs_track_, "demote-pressure",
                             storage_.dram().clock().now());
    }
  } else {
    stats_.demotions_invalidated.Add();
  }
  EraseCleanEntry(it);
  return true;
}

double ResidencyManager::DecayTo(Heat& h, SimTime now) const {
  if (now > h.last) {
    const double dt = static_cast<double>(now - h.last);
    h.decayed *= std::exp2(-dt / static_cast<double>(options_.heat_half_life));
    h.last = now;
  }
  return h.decayed;
}

double ResidencyManager::Touch(const BlockKey& key, SimTime now) {
  stats_.touches.Add();
  Heat& h = heat_[key];
  DecayTo(h, now);
  h.decayed += 1.0;
  h.raw += 1;
  const double current = h.decayed;
  if (heat_.size() > options_.max_heat_entries) {
    // Sweep entries that have gone cold. The result is order-independent
    // (every entry below the threshold goes), so unordered_map iteration
    // order cannot affect behavior.
    for (auto it = heat_.begin(); it != heat_.end();) {
      if (DecayTo(it->second, now) < 0.25) {
        it = heat_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return current;
}

bool ResidencyManager::ShouldPromote(const Heat& h) const {
  switch (options_.policy) {
    case ResidencyPolicy::kWriteBufferOnly:
      return false;
    case ResidencyPolicy::kReadPromote:
      return h.decayed >= options_.promote_threshold;
    case ResidencyPolicy::kAggressive:
      return h.raw >= options_.aggressive_touches ||
             h.decayed >= options_.promote_threshold;
  }
  return false;
}

void ResidencyManager::TouchRead(const BlockKey& key, SimTime now) {
  if (!enabled()) {
    return;
  }
  (void)Touch(key, now);
}

void ResidencyManager::TouchWrite(const BlockKey& key, SimTime now) {
  if (!enabled()) {
    return;
  }
  (void)Touch(key, now);
}

void ResidencyManager::OnFlashRead(const BlockKey& key, uint64_t flash_block,
                                   SimTime now) {
  if (!enabled()) {
    return;
  }
  (void)Touch(key, now);
  auto it = heat_.find(key);
  assert(it != heat_.end());
  if (ShouldPromote(it->second) && !CleanCached(key)) {
    PromoteFromFlash(key, flash_block, now);
  }
}

bool ResidencyManager::NoteVmFault(const BlockKey& key, SimTime now) {
  if (!enabled()) {
    return false;
  }
  (void)Touch(key, now);
  auto it = heat_.find(key);
  assert(it != heat_.end());
  if (ShouldPromote(it->second)) {
    stats_.vm_promote_faults.Add();
    return true;
  }
  return false;
}

WriteStream ResidencyManager::FlushStream(const BlockKey& key, SimTime now) {
  if (options_.policy != ResidencyPolicy::kAggressive) {
    return WriteStream::kUser;
  }
  const double heat = HeatOf(key, now);
  if (flush_heat_ != nullptr) {
    flush_heat_->Record(static_cast<uint64_t>(heat * 100.0));
  }
  if (heat < options_.cold_hint_threshold) {
    stats_.cold_stream_hints.Add();
    return WriteStream::kRelocation;
  }
  return WriteStream::kUser;
}

void ResidencyManager::ForgetHeat(const BlockKey& key) { heat_.erase(key); }

double ResidencyManager::HeatOf(const BlockKey& key, SimTime now) const {
  auto it = heat_.find(key);
  if (it == heat_.end()) {
    return 0.0;
  }
  // Read-only decay: do not update the stored entry.
  const Heat& h = it->second;
  if (now <= h.last) {
    return h.decayed;
  }
  const double dt = static_cast<double>(now - h.last);
  return h.decayed *
         std::exp2(-dt / static_cast<double>(options_.heat_half_life));
}

uint64_t ResidencyManager::MaxCleanPages() const {
  return static_cast<uint64_t>(options_.max_clean_fraction *
                               static_cast<double>(storage_.total_dram_pages()));
}

void ResidencyManager::PromoteFromFlash(const BlockKey& key,
                                        uint64_t flash_block, SimTime now) {
  const uint64_t cap = MaxCleanPages();
  if (cap == 0) {
    return;
  }
  // Recycle our own LRU tail at the cap — the cache never squeezes dirty
  // data or VM frames to grow.
  while (clean_.size() >= cap) {
    (void)DemoteOneClean(/*pressure=*/true);
  }
  Result<uint64_t> page = storage_.AllocateDramPage();
  while (!page.ok() && DemoteOneClean(/*pressure=*/true)) {
    page = storage_.AllocateDramPage();
  }
  if (!page.ok()) {
    return;  // No free DRAM and nothing of ours to recycle: skip quietly.
  }
  // The promotion read is cleaner-class background I/O: it occupies a flash
  // bank without advancing the caller's clock, so the foreground read that
  // triggered promotion is never stalled by it. The DRAM fill is charged
  // normally (the copy engine writes the page) — but the promoted page
  // *shares* the flash extent rather than copying it: the clean cache and
  // the flash sector alias one refcounted payload.
  Result<PayloadRef> read = storage_.flash_store().ReadRef(
      flash_block, ForTenant(kCleanerIo, tenant_));
  if (!read.ok()) {
    (void)storage_.FreeDramPage(page.value());
    return;
  }
  storage_.InstallPagePayload(page.value(), std::move(read.value()));
  clean_lru_.push_back(key);
  CleanEntry entry;
  entry.dram_page = page.value();
  entry.tenant = tenant_;
  entry.lru_it = std::prev(clean_lru_.end());
  clean_.emplace(key, entry);
  stats_.promotions.Add();
  stats_.promoted_bytes.Add(storage_.page_bytes());
  TenantResidency& lane = stats_.by_tenant.For(tenant_);
  lane.promotions.Add();
  lane.promoted_bytes.Add(storage_.page_bytes());
  if (promote_heat_ != nullptr) {
    promote_heat_->Record(static_cast<uint64_t>(HeatOf(key, now) * 100.0));
  }
  if (obs_ != nullptr) {
    const SimTime t1 = storage_.dram().clock().now();
    obs_->tracer().Span(obs_track_, "promote", now, t1 - now,
                        {"file", key.file_id}, {"block", key.block_index});
  }
}

Result<uint64_t> ResidencyManager::AllocateDramPage(ReclaimSource* requester) {
  Result<uint64_t> page = storage_.AllocateDramPage();
  // 1. The clean cache is the cheapest thing in DRAM: demote it first.
  while (!page.ok() && enabled() && DemoteOneClean(/*pressure=*/true)) {
    page = storage_.AllocateDramPage();
  }
  // 2. The requester's own reclaimable pages — exactly the historical VM
  // reclaim loop, so kWriteBufferOnly behavior is unchanged.
  while (!page.ok() && requester != nullptr && requester->TryReclaimOne()) {
    page = storage_.AllocateDramPage();
  }
  // 3. Under migration policies, every address space's clean pages compete
  // for the same DRAM (single-level store): reclaim from the others too, in
  // registration order for determinism.
  if (!page.ok() && enabled()) {
    for (ReclaimSource* source : sources_) {
      if (source == requester) {
        continue;
      }
      while (!page.ok() && source->TryReclaimOne()) {
        page = storage_.AllocateDramPage();
      }
      if (page.ok()) {
        break;
      }
    }
  }
  return page;
}

void ResidencyManager::AttachObs(Obs* obs) {
  if (obs_ != nullptr && obs_ != obs) {
    obs_->metrics().FlushAndRemoveCollector("residency");
  }
  obs_ = obs;
  if (obs_ == nullptr) {
    promote_heat_ = nullptr;
    flush_heat_ = nullptr;
    return;
  }
  obs_track_ = obs_->tracer().RegisterTrack("residency");
  MetricsRegistry& m = obs_->metrics();
  promote_heat_ = m.AddHistogram("residency/promote_heat_x100");
  flush_heat_ = m.AddHistogram("residency/flush_heat_x100");
  Counter* touches = m.AddCounter("residency/touches");
  Counter* promotions = m.AddCounter("residency/promotions");
  Counter* promoted_bytes = m.AddCounter("residency/promoted_bytes");
  Counter* clean_hits = m.AddCounter("residency/clean_hits");
  Counter* clean_hit_bytes = m.AddCounter("residency/clean_hit_bytes");
  Counter* dem_pressure = m.AddCounter("residency/demotions_pressure");
  Counter* dem_invalid = m.AddCounter("residency/demotions_invalidated");
  Counter* cold_hints = m.AddCounter("residency/cold_stream_hints");
  Counter* vm_promotes = m.AddCounter("residency/vm_promote_faults");
  Gauge* clean_pages = m.AddGauge("residency/clean_pages");
  Gauge* heat_entries = m.AddGauge("residency/heat_entries");
  m.AddCollector("residency", [=, this] {
    auto mirror = [](Counter* dst, const Counter& src) {
      dst->Reset();
      dst->Add(src.value());
    };
    mirror(touches, stats_.touches);
    mirror(promotions, stats_.promotions);
    mirror(promoted_bytes, stats_.promoted_bytes);
    mirror(clean_hits, stats_.clean_hits);
    mirror(clean_hit_bytes, stats_.clean_hit_bytes);
    mirror(dem_pressure, stats_.demotions_pressure);
    mirror(dem_invalid, stats_.demotions_invalidated);
    mirror(cold_hints, stats_.cold_stream_hints);
    mirror(vm_promotes, stats_.vm_promote_faults);
    clean_pages->Set(static_cast<int64_t>(clean_.size()));
    heat_entries->Set(static_cast<int64_t>(heat_.size()));
    // Per-tenant DRAM share and promotion counters, registered lazily as
    // tenants appear (AddCounter/AddGauge are idempotent per name). The
    // clean-page split is recomputed at snapshot time: one scan of the
    // cache beats keeping counters consistent across every demote path.
    if (!stats_.by_tenant.empty()) {
      TenantTable<uint64_t> pages;
      for (const auto& [key, entry] : clean_) {
        pages.For(entry.tenant) += 1;
      }
      for (const auto& e : stats_.by_tenant.entries()) {
        const std::string base =
            "residency/tenant" + std::to_string(e.tenant) + "/";
        auto mirror_lane = [&](const char* key, const Counter& src) {
          Counter* dst = obs_->metrics().AddCounter(base + key);
          dst->Reset();
          dst->Add(src.value());
        };
        mirror_lane("promotions", e.value.promotions);
        mirror_lane("promoted_bytes", e.value.promoted_bytes);
        mirror_lane("clean_hits", e.value.clean_hits);
        mirror_lane("clean_hit_bytes", e.value.clean_hit_bytes);
        const uint64_t* share = pages.Find(e.tenant);
        obs_->metrics()
            .AddGauge(base + "clean_pages")
            ->Set(static_cast<int64_t>(share != nullptr ? *share : 0));
      }
    }
  });
}

}  // namespace ssmc
