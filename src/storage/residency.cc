#include "src/storage/residency.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "src/obs/obs.h"
#include "src/storage/storage_manager.h"
#include "src/storage/write_buffer.h"

namespace ssmc {

const char* ResidencyPolicyName(ResidencyPolicy policy) {
  switch (policy) {
    case ResidencyPolicy::kWriteBufferOnly:
      return "write-buffer-only";
    case ResidencyPolicy::kReadPromote:
      return "read-promote";
    case ResidencyPolicy::kAggressive:
      return "aggressive";
  }
  return "unknown";
}

bool ParseResidencyPolicy(std::string_view name, ResidencyPolicy* out) {
  if (name == "write-buffer-only" || name == "kWriteBufferOnly") {
    *out = ResidencyPolicy::kWriteBufferOnly;
    return true;
  }
  if (name == "read-promote" || name == "kReadPromote") {
    *out = ResidencyPolicy::kReadPromote;
    return true;
  }
  if (name == "aggressive" || name == "kAggressive") {
    *out = ResidencyPolicy::kAggressive;
    return true;
  }
  return false;
}

ResidencyManager::ResidencyManager(StorageManager& storage,
                                   ResidencyOptions options)
    : storage_(storage), options_(options) {
  assert(options_.heat_half_life > 0);
  // Tier 0: the DRAM clean cache, always present.
  CacheTier dram_tier;
  dram_tier.residency = Residency::kClean;
  dram_tier.capacity_pages = MaxCleanPages();
  tiers_.push_back(std::move(dram_tier));
  // Tier 1: the NVM cache, only when the machine has NVM capacity — the
  // two-tier hierarchy stays bit-identical with no NVM behind the manager.
  if (storage_.total_nvm_pages() > 0) {
    CacheTier nvm_tier;
    nvm_tier.residency = Residency::kNvm;
    nvm_tier.capacity_pages = static_cast<uint64_t>(
        options_.max_nvm_fraction *
        static_cast<double>(storage_.total_nvm_pages()));
    tiers_.push_back(std::move(nvm_tier));
  }
}

ResidencyManager::~ResidencyManager() {
  InvalidateAllClean();
  if (obs_ != nullptr) {
    obs_->metrics().FlushAndRemoveCollector("residency");
  }
}

void ResidencyManager::DetachFilesystem() {
  dirty_backend_ = nullptr;
  InvalidateAllClean();
  heat_.clear();
}

void ResidencyManager::RegisterSource(ReclaimSource* source) {
  if (std::find(sources_.begin(), sources_.end(), source) == sources_.end()) {
    sources_.push_back(source);
  }
}

void ResidencyManager::DropSource(ReclaimSource* source) {
  sources_.erase(std::remove(sources_.begin(), sources_.end(), source),
                 sources_.end());
}

Residency ResidencyManager::Resolve(const BlockKey& key,
                                    int64_t flash_block) const {
  if (dirty_backend_ != nullptr && dirty_backend_->Contains(key)) {
    return Residency::kDirty;
  }
  // Cache tiers top-down: the fastest copy wins.
  for (const CacheTier& tier : tiers_) {
    if (tier.entries.find(key) != tier.entries.end()) {
      return tier.residency;
    }
  }
  if (flash_block >= 0) {
    return Residency::kFlash;
  }
  return Residency::kHole;
}

std::vector<ResidencyManager::TierStatus> ResidencyManager::Tiers() const {
  std::vector<TierStatus> out;
  out.reserve(tiers_.size());
  for (const CacheTier& tier : tiers_) {
    TierStatus s;
    s.residency = tier.residency;
    s.capacity_pages = tier.capacity_pages;
    s.cached_pages = tier.entries.size();
    out.push_back(s);
  }
  return out;
}

Status ResidencyManager::ReadClean(const BlockKey& key, uint64_t offset,
                                   std::span<uint8_t> out) {
  CacheTier& tier = tiers_[kDramTier];
  auto it = tier.entries.find(key);
  if (it == tier.entries.end()) {
    return NotFoundError("block not clean-cached");
  }
  if (offset + out.size() > storage_.page_bytes()) {
    return OutOfRangeError("clean-cache read exceeds block bounds");
  }
  // Refresh LRU: splice the entry to the MRU end.
  tier.lru.splice(tier.lru.end(), tier.lru, it->second.lru_it);
  storage_.ReadPagePayload(it->second.page, offset, out);
  stats_.clean_hits.Add();
  stats_.clean_hit_bytes.Add(out.size());
  TenantResidency& lane = stats_.by_tenant.For(tenant_);
  lane.clean_hits.Add();
  lane.clean_hit_bytes.Add(out.size());
  return Status::Ok();
}

Status ResidencyManager::ReadNvm(const BlockKey& key, uint64_t offset,
                                 std::span<uint8_t> out) {
  if (!has_nvm_tier()) {
    return NotFoundError("no NVM tier");
  }
  CacheTier& tier = tiers_[kNvmTier];
  auto it = tier.entries.find(key);
  if (it == tier.entries.end()) {
    return NotFoundError("block not NVM-cached");
  }
  if (offset + out.size() > storage_.page_bytes()) {
    return OutOfRangeError("NVM-cache read exceeds block bounds");
  }
  tier.lru.splice(tier.lru.end(), tier.lru, it->second.lru_it);
  // A foreground blocking read through the NVM bank scheduler: the caller
  // waits on the byte-addressable medium, at NVM (not flash) latency.
  storage_.ReadNvmPagePayload(it->second.page, offset, out,
                              ForTenant(kForegroundIo, tenant_));
  stats_.nvm_hits.Add();
  stats_.nvm_hit_bytes.Add(out.size());
  TenantResidency& lane = stats_.by_tenant.For(tenant_);
  lane.nvm_hits.Add();
  lane.nvm_hit_bytes.Add(out.size());
  return Status::Ok();
}

void ResidencyManager::FreeTierPage(const CacheTier& tier, uint64_t page) {
  if (tier.residency == Residency::kNvm) {
    (void)storage_.FreeNvmPage(page);
  } else {
    (void)storage_.FreeDramPage(page);
  }
}

void ResidencyManager::EraseCacheEntry(
    CacheTier& tier,
    std::unordered_map<BlockKey, CacheEntry, BlockKeyHash>::iterator it) {
  FreeTierPage(tier, it->second.page);
  tier.lru.erase(it->second.lru_it);
  tier.entries.erase(it);
}

void ResidencyManager::InvalidateClean(const BlockKey& key) {
  for (CacheTier& tier : tiers_) {
    auto it = tier.entries.find(key);
    if (it == tier.entries.end()) {
      continue;
    }
    stats_.demotions_invalidated.Add();
    EraseCacheEntry(tier, it);
    return;  // Exclusive: a block lives in at most one tier.
  }
}

void ResidencyManager::InvalidateAllClean() {
  for (CacheTier& tier : tiers_) {
    stats_.demotions_invalidated.Add(tier.entries.size());
    for (auto& [key, entry] : tier.entries) {
      FreeTierPage(tier, entry.page);
    }
    tier.entries.clear();
    tier.lru.clear();
  }
}

bool ResidencyManager::DemoteOne(size_t tier_index, bool pressure) {
  CacheTier& tier = tiers_[tier_index];
  if (tier.lru.empty()) {
    return false;
  }
  auto it = tier.entries.find(tier.lru.front());
  assert(it != tier.entries.end());
  // Adjacent-tier demotion: the DRAM tail falls into the NVM tier when one
  // exists (the payload moves by reference; the block stays cached, one
  // tier colder). The bottom tier's tail drops — flash is authoritative.
  if (tier_index + 1 < tiers_.size()) {
    const BlockKey key = it->first;
    const TenantId owner = it->second.tenant;
    const Result<uint64_t> below = AllocateTierPage(tier_index + 1);
    if (below.ok()) {
      CacheTier& lower = tiers_[tier_index + 1];
      // Move the payload down by reference: one full-page read from the
      // upper medium, one background write to the lower.
      PayloadRef payload = storage_.ReadPagePayloadRef(it->second.page);
      storage_.InstallNvmPagePayload(below.value(), std::move(payload),
                                     ForTenant(kCleanerIo, owner));
      EraseCacheEntry(tier, it);
      lower.lru.push_back(key);
      CacheEntry entry;
      entry.page = below.value();
      entry.tenant = owner;
      entry.lru_it = std::prev(lower.lru.end());
      lower.entries.emplace(key, entry);
      stats_.demotions_to_nvm.Add();
      if (pressure) {
        stats_.demotions_pressure.Add();
        if (obs_ != nullptr) {
          obs_->tracer().Instant(obs_track_, "demote-pressure",
                                 storage_.dram().clock().now());
        }
      }
      return true;
    }
    // No room below (pool exhausted by other consumers): fall through and
    // drop, exactly like a bottom tier.
  }
  if (pressure) {
    stats_.demotions_pressure.Add();
    if (obs_ != nullptr) {
      obs_->tracer().Instant(obs_track_, "demote-pressure",
                             storage_.dram().clock().now());
    }
  } else {
    stats_.demotions_invalidated.Add();
  }
  EraseCacheEntry(tier, it);
  return true;
}

double ResidencyManager::DecayTo(Heat& h, SimTime now) const {
  if (now > h.last) {
    const double dt = static_cast<double>(now - h.last);
    h.decayed *= std::exp2(-dt / static_cast<double>(options_.heat_half_life));
    h.last = now;
  }
  return h.decayed;
}

double ResidencyManager::Touch(const BlockKey& key, SimTime now) {
  stats_.touches.Add();
  Heat& h = heat_[key];
  DecayTo(h, now);
  h.decayed += 1.0;
  h.raw += 1;
  const double current = h.decayed;
  if (heat_.size() > options_.max_heat_entries) {
    // Sweep entries that have gone cold. The result is order-independent
    // (every entry below the threshold goes), so unordered_map iteration
    // order cannot affect behavior.
    for (auto it = heat_.begin(); it != heat_.end();) {
      if (DecayTo(it->second, now) < 0.25) {
        it = heat_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return current;
}

bool ResidencyManager::ShouldPromote(const Heat& h) const {
  switch (options_.policy) {
    case ResidencyPolicy::kWriteBufferOnly:
      return false;
    case ResidencyPolicy::kReadPromote:
      return h.decayed >= options_.promote_threshold;
    case ResidencyPolicy::kAggressive:
      return h.raw >= options_.aggressive_touches ||
             h.decayed >= options_.promote_threshold;
  }
  return false;
}

bool ResidencyManager::ShouldAdmitFromFlash(const Heat& h) const {
  if (!has_nvm_tier()) {
    return ShouldPromote(h);
  }
  switch (options_.policy) {
    case ResidencyPolicy::kWriteBufferOnly:
      return false;
    case ResidencyPolicy::kReadPromote:
      return h.decayed >= options_.nvm_promote_threshold;
    case ResidencyPolicy::kAggressive:
      return h.raw >= options_.aggressive_touches ||
             h.decayed >= options_.nvm_promote_threshold;
  }
  return false;
}

void ResidencyManager::TouchRead(const BlockKey& key, SimTime now) {
  if (!enabled()) {
    return;
  }
  (void)Touch(key, now);
}

void ResidencyManager::TouchWrite(const BlockKey& key, SimTime now) {
  if (!enabled()) {
    return;
  }
  (void)Touch(key, now);
}

void ResidencyManager::OnFlashRead(const BlockKey& key, uint64_t flash_block,
                                   SimTime now) {
  if (!enabled()) {
    return;
  }
  (void)Touch(key, now);
  auto it = heat_.find(key);
  assert(it != heat_.end());
  if (ShouldAdmitFromFlash(it->second) && !CleanCached(key) &&
      !NvmCached(key)) {
    PromoteFromFlash(key, flash_block, now);
  }
}

void ResidencyManager::OnNvmRead(const BlockKey& key, SimTime now) {
  if (!enabled()) {
    return;
  }
  (void)Touch(key, now);
  auto it = heat_.find(key);
  assert(it != heat_.end());
  if (ShouldPromote(it->second) && NvmCached(key)) {
    PromoteNvmToDram(key, now);
  }
}

bool ResidencyManager::NoteVmFault(const BlockKey& key, SimTime now) {
  if (!enabled()) {
    return false;
  }
  (void)Touch(key, now);
  auto it = heat_.find(key);
  assert(it != heat_.end());
  if (ShouldPromote(it->second)) {
    stats_.vm_promote_faults.Add();
    return true;
  }
  return false;
}

WriteStream ResidencyManager::FlushStream(const BlockKey& key, SimTime now) {
  if (options_.policy != ResidencyPolicy::kAggressive) {
    return WriteStream::kUser;
  }
  const double heat = HeatOf(key, now);
  if (flush_heat_ != nullptr) {
    flush_heat_->Record(static_cast<uint64_t>(heat * 100.0));
  }
  if (heat < options_.cold_hint_threshold) {
    stats_.cold_stream_hints.Add();
    return WriteStream::kRelocation;
  }
  return WriteStream::kUser;
}

void ResidencyManager::ForgetHeat(const BlockKey& key) { heat_.erase(key); }

double ResidencyManager::HeatOf(const BlockKey& key, SimTime now) const {
  auto it = heat_.find(key);
  if (it == heat_.end()) {
    return 0.0;
  }
  // Read-only decay: do not update the stored entry.
  const Heat& h = it->second;
  if (now <= h.last) {
    return h.decayed;
  }
  const double dt = static_cast<double>(now - h.last);
  return h.decayed *
         std::exp2(-dt / static_cast<double>(options_.heat_half_life));
}

uint64_t ResidencyManager::MaxCleanPages() const {
  return static_cast<uint64_t>(options_.max_clean_fraction *
                               static_cast<double>(storage_.total_dram_pages()));
}

Result<uint64_t> ResidencyManager::AllocateTierPage(size_t tier_index) {
  CacheTier& tier = tiers_[tier_index];
  if (tier.capacity_pages == 0) {
    return ResourceExhaustedError("tier has no budget");
  }
  // Recycle the tier's own LRU tail at its budget — a cache never squeezes
  // dirty data or VM frames to grow.
  while (tier.entries.size() >= tier.capacity_pages) {
    (void)DemoteOne(tier_index, /*pressure=*/true);
  }
  const bool nvm = tier.residency == Residency::kNvm;
  Result<uint64_t> page =
      nvm ? storage_.AllocateNvmPage() : storage_.AllocateDramPage();
  while (!page.ok() && DemoteOne(tier_index, /*pressure=*/true)) {
    page = nvm ? storage_.AllocateNvmPage() : storage_.AllocateDramPage();
  }
  return page;
}

void ResidencyManager::PromoteFromFlash(const BlockKey& key,
                                        uint64_t flash_block, SimTime now) {
  // Admission from flash targets the bottom cache tier; blocks climb the
  // rest of the ladder one tier at a time as their heat holds up.
  const size_t target = tiers_.size() - 1;
  const Result<uint64_t> page = AllocateTierPage(target);
  if (!page.ok()) {
    return;  // No free pages and nothing of ours to recycle: skip quietly.
  }
  // The promotion read is cleaner-class background I/O: it occupies a flash
  // bank without advancing the caller's clock, so the foreground read that
  // triggered promotion is never stalled by it. The fill is charged
  // normally (the copy engine writes the page) — but the promoted page
  // *shares* the flash extent rather than copying it: the cache and the
  // flash sector alias one refcounted payload.
  Result<PayloadRef> read = storage_.flash_store().ReadRef(
      flash_block, ForTenant(kCleanerIo, tenant_));
  if (!read.ok()) {
    FreeTierPage(tiers_[target], page.value());
    return;
  }
  CacheTier& tier = tiers_[target];
  if (tier.residency == Residency::kNvm) {
    storage_.InstallNvmPagePayload(page.value(), std::move(read.value()),
                                   ForTenant(kCleanerIo, tenant_));
    stats_.nvm_promotions.Add();
    stats_.nvm_promoted_bytes.Add(storage_.page_bytes());
  } else {
    storage_.InstallPagePayload(page.value(), std::move(read.value()));
    stats_.promotions.Add();
    stats_.promoted_bytes.Add(storage_.page_bytes());
    TenantResidency& lane = stats_.by_tenant.For(tenant_);
    lane.promotions.Add();
    lane.promoted_bytes.Add(storage_.page_bytes());
  }
  tier.lru.push_back(key);
  CacheEntry entry;
  entry.page = page.value();
  entry.tenant = tenant_;
  entry.lru_it = std::prev(tier.lru.end());
  tier.entries.emplace(key, entry);
  if (promote_heat_ != nullptr) {
    promote_heat_->Record(static_cast<uint64_t>(HeatOf(key, now) * 100.0));
  }
  if (obs_ != nullptr) {
    const SimTime t1 = storage_.dram().clock().now();
    obs_->tracer().Span(obs_track_, "promote", now, t1 - now,
                        {"file", key.file_id}, {"block", key.block_index});
  }
}

void ResidencyManager::PromoteNvmToDram(const BlockKey& key, SimTime now) {
  CacheTier& nvm_tier = tiers_[kNvmTier];
  auto it = nvm_tier.entries.find(key);
  if (it == nvm_tier.entries.end()) {
    return;
  }
  const Result<uint64_t> page = AllocateTierPage(kDramTier);
  if (!page.ok()) {
    return;  // DRAM budget dry: the block stays warm in NVM.
  }
  // Move the payload up by reference: a background NVM read (the migration
  // engine pulls the page) and a DRAM install. The NVM page returns to the
  // pool — tiers are exclusive.
  PayloadRef payload = storage_.ReadNvmPagePayloadRef(
      it->second.page, ForTenant(kCleanerIo, tenant_));
  storage_.InstallPagePayload(page.value(), std::move(payload));
  EraseCacheEntry(nvm_tier, it);
  CacheTier& dram_tier = tiers_[kDramTier];
  dram_tier.lru.push_back(key);
  CacheEntry entry;
  entry.page = page.value();
  entry.tenant = tenant_;
  entry.lru_it = std::prev(dram_tier.lru.end());
  dram_tier.entries.emplace(key, entry);
  stats_.nvm_to_dram_promotions.Add();
  stats_.promotions.Add();
  stats_.promoted_bytes.Add(storage_.page_bytes());
  TenantResidency& lane = stats_.by_tenant.For(tenant_);
  lane.promotions.Add();
  lane.promoted_bytes.Add(storage_.page_bytes());
  if (promote_heat_ != nullptr) {
    promote_heat_->Record(static_cast<uint64_t>(HeatOf(key, now) * 100.0));
  }
  if (obs_ != nullptr) {
    const SimTime t1 = storage_.dram().clock().now();
    obs_->tracer().Span(obs_track_, "promote-nvm-dram", now, t1 - now,
                        {"file", key.file_id}, {"block", key.block_index});
  }
}

Result<uint64_t> ResidencyManager::AllocateDramPage(ReclaimSource* requester) {
  Result<uint64_t> page = storage_.AllocateDramPage();
  // 1. The clean cache is the cheapest thing in DRAM: demote it first (with
  // an NVM tier the tail falls one tier rather than out of the hierarchy).
  while (!page.ok() && enabled() && DemoteOneClean(/*pressure=*/true)) {
    page = storage_.AllocateDramPage();
  }
  // 2. The requester's own reclaimable pages — exactly the historical VM
  // reclaim loop, so kWriteBufferOnly behavior is unchanged.
  while (!page.ok() && requester != nullptr && requester->TryReclaimOne()) {
    page = storage_.AllocateDramPage();
  }
  // 3. Under migration policies, every address space's clean pages compete
  // for the same DRAM (single-level store): reclaim from the others too, in
  // registration order for determinism.
  if (!page.ok() && enabled()) {
    for (ReclaimSource* source : sources_) {
      if (source == requester) {
        continue;
      }
      while (!page.ok() && source->TryReclaimOne()) {
        page = storage_.AllocateDramPage();
      }
      if (page.ok()) {
        break;
      }
    }
  }
  return page;
}

void ResidencyManager::AttachObs(Obs* obs) {
  if (obs_ != nullptr && obs_ != obs) {
    obs_->metrics().FlushAndRemoveCollector("residency");
  }
  obs_ = obs;
  if (obs_ == nullptr) {
    promote_heat_ = nullptr;
    flush_heat_ = nullptr;
    return;
  }
  obs_track_ = obs_->tracer().RegisterTrack("residency");
  MetricsRegistry& m = obs_->metrics();
  promote_heat_ = m.AddHistogram("residency/promote_heat_x100");
  flush_heat_ = m.AddHistogram("residency/flush_heat_x100");
  Counter* touches = m.AddCounter("residency/touches");
  Counter* promotions = m.AddCounter("residency/promotions");
  Counter* promoted_bytes = m.AddCounter("residency/promoted_bytes");
  Counter* clean_hits = m.AddCounter("residency/clean_hits");
  Counter* clean_hit_bytes = m.AddCounter("residency/clean_hit_bytes");
  Counter* dem_pressure = m.AddCounter("residency/demotions_pressure");
  Counter* dem_invalid = m.AddCounter("residency/demotions_invalidated");
  Counter* cold_hints = m.AddCounter("residency/cold_stream_hints");
  Counter* vm_promotes = m.AddCounter("residency/vm_promote_faults");
  Gauge* clean_pages_g = m.AddGauge("residency/clean_pages");
  Gauge* heat_entries = m.AddGauge("residency/heat_entries");
  Counter* nvm_promotions = nullptr;
  Counter* nvm_promoted_bytes = nullptr;
  Counter* nvm_hits = nullptr;
  Counter* nvm_hit_bytes = nullptr;
  Counter* nvm_to_dram = nullptr;
  Counter* dem_to_nvm = nullptr;
  Gauge* nvm_pages_g = nullptr;
  if (has_nvm_tier()) {
    nvm_promotions = m.AddCounter("residency/nvm_promotions");
    nvm_promoted_bytes = m.AddCounter("residency/nvm_promoted_bytes");
    nvm_hits = m.AddCounter("residency/nvm_hits");
    nvm_hit_bytes = m.AddCounter("residency/nvm_hit_bytes");
    nvm_to_dram = m.AddCounter("residency/nvm_to_dram_promotions");
    dem_to_nvm = m.AddCounter("residency/demotions_to_nvm");
    nvm_pages_g = m.AddGauge("residency/nvm_pages");
  }
  m.AddCollector("residency", [=, this] {
    auto mirror = [](Counter* dst, const Counter& src) {
      dst->Reset();
      dst->Add(src.value());
    };
    mirror(touches, stats_.touches);
    mirror(promotions, stats_.promotions);
    mirror(promoted_bytes, stats_.promoted_bytes);
    mirror(clean_hits, stats_.clean_hits);
    mirror(clean_hit_bytes, stats_.clean_hit_bytes);
    mirror(dem_pressure, stats_.demotions_pressure);
    mirror(dem_invalid, stats_.demotions_invalidated);
    mirror(cold_hints, stats_.cold_stream_hints);
    mirror(vm_promotes, stats_.vm_promote_faults);
    clean_pages_g->Set(static_cast<int64_t>(clean_pages()));
    heat_entries->Set(static_cast<int64_t>(heat_.size()));
    if (nvm_promotions != nullptr) {
      mirror(nvm_promotions, stats_.nvm_promotions);
      mirror(nvm_promoted_bytes, stats_.nvm_promoted_bytes);
      mirror(nvm_hits, stats_.nvm_hits);
      mirror(nvm_hit_bytes, stats_.nvm_hit_bytes);
      mirror(nvm_to_dram, stats_.nvm_to_dram_promotions);
      mirror(dem_to_nvm, stats_.demotions_to_nvm);
      nvm_pages_g->Set(static_cast<int64_t>(nvm_pages()));
    }
    // Per-tenant DRAM share and promotion counters, registered lazily as
    // tenants appear (AddCounter/AddGauge are idempotent per name). The
    // clean-page split is recomputed at snapshot time: one scan of the
    // cache beats keeping counters consistent across every demote path.
    if (!stats_.by_tenant.empty()) {
      TenantTable<uint64_t> pages;
      for (const auto& [key, entry] : tiers_[kDramTier].entries) {
        pages.For(entry.tenant) += 1;
      }
      for (const auto& e : stats_.by_tenant.entries()) {
        const std::string base =
            "residency/tenant" + std::to_string(e.tenant) + "/";
        auto mirror_lane = [&](const char* key, const Counter& src) {
          Counter* dst = obs_->metrics().AddCounter(base + key);
          dst->Reset();
          dst->Add(src.value());
        };
        mirror_lane("promotions", e.value.promotions);
        mirror_lane("promoted_bytes", e.value.promoted_bytes);
        mirror_lane("clean_hits", e.value.clean_hits);
        mirror_lane("clean_hit_bytes", e.value.clean_hit_bytes);
        if (has_nvm_tier()) {
          mirror_lane("nvm_hits", e.value.nvm_hits);
          mirror_lane("nvm_hit_bytes", e.value.nvm_hit_bytes);
        }
        const uint64_t* share = pages.Find(e.tenant);
        obs_->metrics()
            .AddGauge(base + "clean_pages")
            ->Set(static_cast<int64_t>(share != nullptr ? *share : 0));
      }
    }
  });
}

}  // namespace ssmc
