// The physical storage manager (paper Section 3.3).
//
// Owns the partitioning of physical resources between the file system and
// the virtual memory system: it maintains "a list of free flash memory
// sectors and a list of free DRAM pages, allocating them to the file and
// virtual memory systems as needed." Concretely it provides:
//  * a DRAM page allocator over the machine's DramDevice;
//  * a logical flash-block allocator over the FlashStore;
//  * metadata-access accounting (memory-resident structures cost DRAM time);
//  * the shared WriteBuffer (write_buffer.h) is built on these allocators.
//
// Flash traffic issued on behalf of these services is classed (see
// src/sim/io_request.h): user I/O runs foreground, write-buffer flushes run
// flush-class, and the store's own cleaning runs cleaner-class, so the
// device scheduler can keep reads fast while background work drains.

#ifndef SSMC_SRC_STORAGE_STORAGE_MANAGER_H_
#define SSMC_SRC_STORAGE_STORAGE_MANAGER_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/device/dram_device.h"
#include "src/device/nvm_device.h"
#include "src/ftl/flash_store.h"
#include "src/storage/residency.h"
#include "src/support/extent.h"
#include "src/support/status.h"

namespace ssmc {

class Obs;

class StorageManager {
 public:
  // page_bytes is the unit of DRAM allocation; it must equal the flash
  // store's block size so buffered blocks flush 1:1. `residency` selects
  // the tier migration policy (residency.h); the default kWriteBufferOnly
  // is byte-identical to the pre-residency simulator. `nvm` adds the
  // byte-addressable NVM tier between DRAM and flash; null (the default)
  // keeps the two-tier hierarchy bit-for-bit.
  StorageManager(DramDevice& dram, FlashStore& flash_store,
                 uint64_t page_bytes, ResidencyOptions residency = {},
                 NvmDevice* nvm = nullptr);
  // Flushes and removes the free-pool collector from any attached Obs
  // (which routinely outlives the manager).
  ~StorageManager();

  uint64_t page_bytes() const { return page_bytes_; }
  DramDevice& dram() { return dram_; }
  FlashStore& flash_store() { return flash_store_; }
  // The single authority on DRAM<->flash placement and migration. Consumers
  // that want migration pressure applied on allocation failure go through
  // residency().AllocateDramPage(...) rather than the raw allocator below.
  ResidencyManager& residency() { return *residency_; }
  const ResidencyManager& residency() const { return *residency_; }

  // --- DRAM page allocation ---------------------------------------------
  uint64_t total_dram_pages() const { return total_dram_pages_; }
  uint64_t free_dram_pages() const { return free_dram_pages_.size(); }
  // Returns the page index; the page's device address is index * page_bytes.
  // RESOURCE_EXHAUSTED when the pool is dry (a typed out-of-memory: callers
  // distinguish it from media-level kNoSpace).
  Result<uint64_t> AllocateDramPage();
  Status FreeDramPage(uint64_t page);
  uint64_t DramPageAddress(uint64_t page) const { return page * page_bytes_; }

  // --- NVM page allocation ------------------------------------------------
  // The optional byte-addressable NVM tier, allocated in the same page unit
  // as DRAM. Null / zero-sized when the machine has no NVM.
  NvmDevice* nvm() { return nvm_; }
  const NvmDevice* nvm() const { return nvm_; }
  uint64_t total_nvm_pages() const { return total_nvm_pages_; }
  uint64_t free_nvm_pages() const { return free_nvm_pages_.size(); }
  Result<uint64_t> AllocateNvmPage();
  Status FreeNvmPage(uint64_t page);
  uint64_t NvmPageAddress(uint64_t page) const { return page * page_bytes_; }

  // --- Flash logical-block allocation -------------------------------------
  uint64_t total_flash_blocks() const { return flash_store_.num_blocks(); }
  uint64_t free_flash_blocks() const { return free_flash_blocks_.size(); }
  Result<uint64_t> AllocateFlashBlock();
  // Frees the block and trims its contents from the store.
  Status FreeFlashBlock(uint64_t block);
  // Claims a specific block (fixed superblock locations). Fails if taken.
  Status ReserveFlashBlock(uint64_t block);
  bool IsFlashBlockUsed(uint64_t block) const {
    return block < flash_block_used_.size() && flash_block_used_[block];
  }

  // Observability (nullable; null detaches): free-pool gauges pulled at
  // snapshot time.
  void AttachObs(Obs* obs);

  // --- Page payloads ------------------------------------------------------
  // Every allocated DRAM page carries its contents as a refcounted payload
  // extent instead of bytes in the DramDevice backing store. The accessors
  // below charge exactly what a DramDevice::Read/Write of the same size
  // would (ChargeAccess runs the identical clock/energy/stats arithmetic),
  // so simulated timing is unchanged — but aliased pages (a flushed block
  // that also sits programmed in flash, a promoted clean copy, an anonymous
  // zero page) share one extent, and writes to shared extents copy-on-write.
  // The pool is the flash store's: refs flow between DRAM pages and flash
  // sectors without ever copying payload bytes.
  ExtentPool& extent_pool() { return flash_store_.extent_pool(); }

  // Reads/writes within one page's payload. offset + size must stay inside
  // the page; reads of never-written pages are zero fill (what the DRAM
  // device returns for unmaterialized chunks).
  Duration ReadPagePayload(uint64_t page, uint64_t offset,
                           std::span<uint8_t> out);
  Duration WritePagePayload(uint64_t page, uint64_t offset,
                            std::span<const uint8_t> data);
  // Installs a whole-page payload by reference (zero-copy promotion/fill);
  // charges one full-page DRAM write. payload.size() must equal page_bytes.
  Duration InstallPagePayload(uint64_t page, PayloadRef payload);
  // Zero-fills a page: charges a full-page DRAM write and aliases the shared
  // all-zeros extent (every anonymous VM page starts as one refcount bump).
  Duration ZeroFillPagePayload(uint64_t page);
  // Borrows the page's payload as a ref (refcount bump), charging one
  // full-page DRAM read — the flush path's "read the buffer" step. A
  // never-written page materializes as the shared zero extent.
  PayloadRef ReadPagePayloadRef(uint64_t page);
  // Battery failure: volatile contents are gone. Mirrors
  // DramDevice::ForceContentLoss for the payload table — subsequent reads
  // see zero fill, matching the device's dropped-chunk behavior. NVM page
  // payloads are left intact: the tier is non-volatile.
  void DropAllPagePayloads();

  // --- NVM page payloads --------------------------------------------------
  // Same refcounted-extent representation as DRAM pages, charged against the
  // NVM device's asymmetric read/write timing through its bank scheduler.
  // Valid only when nvm() is non-null.
  Duration ReadNvmPagePayload(uint64_t page, uint64_t offset,
                              std::span<uint8_t> out, IoIssue issue = {});
  // Installs a whole-page payload by reference (zero-copy promotion);
  // charges one full-page NVM write. payload.size() must equal page_bytes.
  Duration InstallNvmPagePayload(uint64_t page, PayloadRef payload,
                                 IoIssue issue = kCleanerIo);
  // Borrows the page's payload as a ref (refcount bump), charging one
  // full-page NVM read.
  PayloadRef ReadNvmPagePayloadRef(uint64_t page, IoIssue issue = {});

  // --- Metadata accounting ------------------------------------------------
  // Memory-resident metadata (directories, inodes, page tables) lives in
  // DRAM; operations on it cost DRAM access time.
  void ChargeMetadataRead(uint64_t bytes) {
    dram_.ChargeAccess(bytes, /*is_write=*/false);
  }
  void ChargeMetadataWrite(uint64_t bytes) {
    dram_.ChargeAccess(bytes, /*is_write=*/true);
  }

 private:
  DramDevice& dram_;
  FlashStore& flash_store_;
  NvmDevice* nvm_;
  uint64_t page_bytes_;
  uint64_t total_dram_pages_;
  uint64_t total_nvm_pages_ = 0;
  std::vector<uint64_t> free_dram_pages_;
  std::vector<uint64_t> free_nvm_pages_;
  std::vector<uint64_t> free_flash_blocks_;
  std::vector<bool> dram_page_used_;
  std::vector<bool> nvm_page_used_;
  std::vector<bool> flash_block_used_;
  std::vector<PayloadRef> page_payloads_;      // Indexed by DRAM page.
  std::vector<PayloadRef> nvm_page_payloads_;  // Indexed by NVM page.
  PayloadRef zero_extent_;                 // Lazily built, shared by aliasing.
  Obs* obs_ = nullptr;
  // Declared last: its destructor returns the clean cache's DRAM pages to
  // the allocator above, which must still be alive.
  std::unique_ptr<ResidencyManager> residency_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_STORAGE_STORAGE_MANAGER_H_
