#include "src/storage/tier_model.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ssmc {

std::vector<double> ZipfPopularity(uint64_t n, double s) {
  std::vector<double> p(n);
  double norm = 0;
  for (uint64_t i = 0; i < n; ++i) {
    p[i] = 1.0 / std::pow(static_cast<double>(i + 1), s);
    norm += p[i];
  }
  for (double& v : p) {
    v /= norm;
  }
  return p;
}

namespace {
double ExpectedOccupancy(const std::vector<double>& popularity, double t) {
  double occ = 0;
  for (const double p : popularity) {
    occ += 1.0 - std::exp(-p * t);
  }
  return occ;
}
}  // namespace

double CheCharacteristicTime(const std::vector<double>& popularity,
                             double cache_slots) {
  if (cache_slots <= 0) {
    return 0;
  }
  assert(cache_slots < static_cast<double>(popularity.size()));
  // ExpectedOccupancy is monotone in t, 0 at t=0, -> n as t -> inf:
  // bracket then bisect.
  double lo = 0;
  double hi = 1;
  while (ExpectedOccupancy(popularity, hi) < cache_slots) {
    hi *= 2;
    assert(hi < 1e30);
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (ExpectedOccupancy(popularity, mid) < cache_slots) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

double LruHitRate(const std::vector<double>& popularity, double cache_slots) {
  if (cache_slots <= 0) {
    return 0;
  }
  if (cache_slots >= static_cast<double>(popularity.size())) {
    return 1.0;
  }
  const double t = CheCharacteristicTime(popularity, cache_slots);
  double hit = 0;
  for (const double p : popularity) {
    hit += p * (1.0 - std::exp(-p * t));
  }
  return std::min(hit, 1.0);
}

TieredHitRates TieredLruHitRates(const std::vector<double>& popularity,
                                 double dram_slots, double nvm_slots) {
  TieredHitRates rates;
  rates.dram = LruHitRate(popularity, dram_slots);
  rates.combined = LruHitRate(popularity, dram_slots + nvm_slots);
  rates.nvm = rates.combined - rates.dram;
  return rates;
}

}  // namespace ssmc
