// DRAM write buffer (paper Section 3.3).
//
// "The storage manager ... can buffer written data in DRAM before eventually
// flushing it to flash memory. This technique can keep the rate of writes
// into flash memory manageably low because a large percentage of write
// operations are to short-lived files or to file blocks that are soon
// overwritten." The buffer holds only dirty blocks (a clean-data file cache
// is pointless when all storage reads at memory speed — Section 3.1), backed
// by DRAM pages from the StorageManager. Because mobile DRAM is battery
// backed, buffered data is stable against ordinary power-off; only total
// battery failure loses it (experiment E10).
//
// Eviction and flushing:
//  * capacity eviction: when full, the least-recently-written dirty block is
//    flushed to flash and dropped;
//  * age flush: FlushOlderThan(age) writes back blocks dirty longer than a
//    threshold (the classical 30-second sync policy), invoked periodically
//    by the machine's flush daemon;
//  * write avoidance: Drop(key) discards a dirty block whose file was
//    deleted or truncated — that write never reaches flash, which is where
//    the 40-50% traffic reduction comes from.
//
// Flushed blocks reach the flash store as flush-class I/O requests
// (IoPriority::kFlush — see src/sim/io_request.h): below foreground reads,
// above cleaner traffic when the machine opts into priority scheduling.

#ifndef SSMC_SRC_STORAGE_WRITE_BUFFER_H_
#define SSMC_SRC_STORAGE_WRITE_BUFFER_H_

#include <cstdint>
#include <functional>
#include <list>
#include <span>
#include <unordered_map>

#include "src/sim/io_stats.h"
#include "src/sim/stats.h"
#include "src/storage/block_key.h"
#include "src/storage/storage_manager.h"
#include "src/support/status.h"

namespace ssmc {

class Obs;

class WriteBuffer {
 public:
  // Destination for flushed blocks; supplied by the file system, which knows
  // the flash placement of each file block. The block travels as a payload
  // ref: a flush that lands in the flash store programs the very extent the
  // buffer holds (refcount bump), never copying the bytes. The tenant is
  // whoever last dirtied the block — the flush daemon drains on everyone's
  // behalf, but the flash program is billed to the writer.
  using FlushFn =
      std::function<Status(const BlockKey&, const PayloadRef&, TenantId)>;

  // capacity_pages = 0 disables buffering entirely: every Put flushes
  // straight through (the "no NVRAM buffer" baseline of experiment E6).
  WriteBuffer(StorageManager& storage, uint64_t capacity_pages,
              FlushFn flush_fn);
  ~WriteBuffer();

  WriteBuffer(const WriteBuffer&) = delete;
  WriteBuffer& operator=(const WriteBuffer&) = delete;

  uint64_t capacity_pages() const { return capacity_pages_; }
  uint64_t dirty_pages() const { return entries_.size(); }
  uint64_t page_bytes() const { return storage_.page_bytes(); }

  // Stores a whole dirty block. data.size() must equal page_bytes().
  // Overwriting an already-buffered block is absorbed in DRAM (and re-bills
  // the block to the overwriting tenant: the last writer owns the flush).
  Status Put(const BlockKey& key, std::span<const uint8_t> data, SimTime now,
             TenantId tenant = kDefaultTenant);

  // Reads a buffered block; NOT_FOUND if not buffered.
  Status Get(const BlockKey& key, std::span<uint8_t> out);

  bool Contains(const BlockKey& key) const {
    return entries_.count(key) != 0;
  }

  // Discards a dirty block without flushing (file deleted / truncated).
  // Returns true if the block was buffered.
  bool Drop(const BlockKey& key);

  // Flushes one specific block if buffered.
  Status Flush(const BlockKey& key);

  // Flushes every block dirty since before (now - max_age).
  Status FlushOlderThan(SimTime now, Duration max_age);

  // Flushes everything (sync / orderly shutdown).
  Status FlushAll();

  // Simulates sudden loss of the buffer (total battery failure): drops all
  // entries and returns the number of dirty bytes that were lost.
  uint64_t DropAllUnflushed();

  struct Stats {
    Counter puts;               // Blocks written into the buffer.
    Counter put_bytes;
    Counter absorbed_overwrites;  // Puts that hit an already-dirty block.
    Counter flushes;            // Blocks written back to flash.
    Counter flushed_bytes;
    Counter capacity_evictions; // Flushes forced by a full buffer.
    Counter dropped_writes;     // Dirty blocks discarded before flush.
    Counter dropped_bytes;
    // Per-tenant buffering: `writes`/`written_bytes` count the tenant's
    // puts (what it pushed into shared DRAM); other fields stay zero — the
    // flush side is attributed downstream by the flash store and device.
    TenantIoTable by_tenant;
  };
  const Stats& stats() const { return stats_; }

  // Observability (nullable; null detaches): a "write buffer" trace track
  // with spans per age-flush / sync batch, instants for capacity evictions,
  // write-avoidance drops and buffer loss, and a Stats mirror collector
  // (dirty pages as a gauge).
  void AttachObs(Obs* obs);

 private:
  // The entry's bytes live in the storage manager's page-payload table,
  // keyed by dram_page — the page allocation is the DRAM budget token, the
  // payload extent is the content.
  struct Entry {
    uint64_t dram_page;
    SimTime dirty_since;  // First dirtying; NOT refreshed by overwrites.
    TenantId tenant;      // Last writer; the flush is billed to them.
    std::list<BlockKey>::iterator lru_it;  // Position in lru_ (front = oldest).
  };

  // Flushes and removes one entry. The iterator must be valid.
  Status FlushEntry(std::unordered_map<BlockKey, Entry, BlockKeyHash>::iterator it);

  StorageManager& storage_;
  uint64_t capacity_pages_;
  FlushFn flush_fn_;
  std::unordered_map<BlockKey, Entry, BlockKeyHash> entries_;
  std::list<BlockKey> lru_;  // Front = least recently written.
  Stats stats_;
  Obs* obs_ = nullptr;
  int obs_track_ = 0;
};

}  // namespace ssmc

#endif  // SSMC_SRC_STORAGE_WRITE_BUFFER_H_
