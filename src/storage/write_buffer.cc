#include "src/storage/write_buffer.h"

#include <cassert>
#include <vector>

#include "src/obs/obs.h"

namespace ssmc {

WriteBuffer::WriteBuffer(StorageManager& storage, uint64_t capacity_pages,
                         FlushFn flush_fn)
    : storage_(storage),
      capacity_pages_(capacity_pages),
      flush_fn_(std::move(flush_fn)) {
  assert(flush_fn_ && "write buffer needs a flush destination");
}

WriteBuffer::~WriteBuffer() {
  // Return DRAM pages; contents are owned by the file system's lifetime.
  for (auto& [key, entry] : entries_) {
    (void)storage_.FreeDramPage(entry.dram_page);
  }
  if (obs_ != nullptr) {
    obs_->metrics().FlushAndRemoveCollector("wbuf");
  }
}

void WriteBuffer::AttachObs(Obs* obs) {
  if (obs_ != nullptr && obs_ != obs) {
    obs_->metrics().FlushAndRemoveCollector("wbuf");
  }
  obs_ = obs;
  if (obs_ == nullptr) {
    return;
  }
  obs_track_ = obs_->tracer().RegisterTrack("write buffer");
  MetricsRegistry& m = obs_->metrics();
  Counter* puts = m.AddCounter("wbuf/puts");
  Counter* absorbed = m.AddCounter("wbuf/absorbed_overwrites");
  Counter* flushes = m.AddCounter("wbuf/flushes");
  Counter* flushed_bytes = m.AddCounter("wbuf/flushed_bytes");
  Counter* evictions = m.AddCounter("wbuf/capacity_evictions");
  Counter* dropped = m.AddCounter("wbuf/dropped_writes");
  Gauge* dirty = m.AddGauge("wbuf/dirty_pages");
  m.AddCollector("wbuf", [=, this] {
    auto mirror = [](Counter* dst, const Counter& src) {
      dst->Reset();
      dst->Add(src.value());
    };
    mirror(puts, stats_.puts);
    mirror(absorbed, stats_.absorbed_overwrites);
    mirror(flushes, stats_.flushes);
    mirror(flushed_bytes, stats_.flushed_bytes);
    mirror(evictions, stats_.capacity_evictions);
    mirror(dropped, stats_.dropped_writes);
    dirty->Set(static_cast<int64_t>(entries_.size()));
  });
}

Status WriteBuffer::Put(const BlockKey& key, std::span<const uint8_t> data,
                        SimTime now, TenantId tenant) {
  if (data.size() != page_bytes()) {
    return InvalidArgumentError("write buffer stores whole blocks");
  }
  stats_.puts.Add();
  stats_.put_bytes.Add(data.size());
  TenantIoStats& lane = stats_.by_tenant.For(tenant);
  lane.writes.Add();
  lane.written_bytes.Add(data.size());

  if (capacity_pages_ == 0) {
    // Unbuffered baseline: write straight through to flash.
    stats_.flushes.Add();
    stats_.flushed_bytes.Add(data.size());
    return flush_fn_(key, storage_.extent_pool().AllocateCopy(data.data()),
                     tenant);
  }

  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Overwrite absorbed in DRAM — this flash write never happens. The
    // block keeps its original dirty_since (the BSD 30-second rule ages
    // from first dirtying), so even hot blocks reach stable storage within
    // one age window. The billing tenant does refresh: last writer owns
    // the eventual flush.
    stats_.absorbed_overwrites.Add();
    it->second.tenant = tenant;
    storage_.WritePagePayload(it->second.dram_page, 0, data);
    return Status::Ok();
  }

  // Make room if needed by flushing the oldest dirty block.
  while (entries_.size() >= capacity_pages_) {
    assert(!lru_.empty());
    auto victim = entries_.find(lru_.front());
    assert(victim != entries_.end());
    stats_.capacity_evictions.Add();
    if (obs_ != nullptr) {
      obs_->tracer().Instant(obs_track_, "capacity-evict",
                             storage_.dram().clock().now());
    }
    SSMC_RETURN_IF_ERROR(FlushEntry(victim));
  }

  // Dirty data is the buffer's reason to exist: allocate through the
  // residency manager so the clean cache (and, under migration policies,
  // other consumers' reclaimable pages) yields before a Put fails. Under
  // kWriteBufferOnly this is exactly the raw allocator.
  Result<uint64_t> page =
      storage_.residency().AllocateDramPage(/*requester=*/nullptr);
  if (!page.ok()) {
    return page.status();
  }
  storage_.WritePagePayload(page.value(), 0, data);
  lru_.push_back(key);
  Entry entry;
  entry.dram_page = page.value();
  entry.dirty_since = now;
  entry.tenant = tenant;
  entry.lru_it = std::prev(lru_.end());
  entries_.emplace(key, entry);
  return Status::Ok();
}

Status WriteBuffer::Get(const BlockKey& key, std::span<uint8_t> out) {
  if (out.size() != page_bytes()) {
    return InvalidArgumentError("write buffer reads whole blocks");
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return NotFoundError("block not buffered");
  }
  storage_.ReadPagePayload(it->second.dram_page, 0, out);
  return Status::Ok();
}

bool WriteBuffer::Drop(const BlockKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return false;
  }
  stats_.dropped_writes.Add();
  stats_.dropped_bytes.Add(page_bytes());
  (void)storage_.FreeDramPage(it->second.dram_page);
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  return true;
}

Status WriteBuffer::FlushEntry(
    std::unordered_map<BlockKey, Entry, BlockKeyHash>::iterator it) {
  // Reading the buffered page costs DRAM time as before, but hands the
  // flush destination the page's own extent: no staging copy.
  PayloadRef data = storage_.ReadPagePayloadRef(it->second.dram_page);
  SSMC_RETURN_IF_ERROR(flush_fn_(it->first, data, it->second.tenant));
  stats_.flushes.Add();
  stats_.flushed_bytes.Add(data.size());
  (void)storage_.FreeDramPage(it->second.dram_page);
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
  return Status::Ok();
}

Status WriteBuffer::Flush(const BlockKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::Ok();
  }
  return FlushEntry(it);
}

Status WriteBuffer::FlushOlderThan(SimTime now, Duration max_age) {
  const uint64_t flushes_before = stats_.flushes.value();
  // lru_ is in insertion order: Put's overwrite path absorbs the write into
  // the existing DRAM page and returns early — it neither refreshes
  // dirty_since nor moves the entry to the back. The front is therefore the
  // FIRST-dirtied entry, dirty_since is monotone along the list, and it is
  // safe to stop at the first young entry. This is what bounds staleness: a
  // block overwritten every second still flushes one age window after its
  // first buffered write, rather than being deferred forever.
  while (!lru_.empty()) {
    auto it = entries_.find(lru_.front());
    assert(it != entries_.end());
    if (now - it->second.dirty_since < max_age) {
      break;
    }
    SSMC_RETURN_IF_ERROR(FlushEntry(it));
  }
  if (obs_ != nullptr && stats_.flushes.value() != flushes_before) {
    obs_->tracer().Span(obs_track_, "age-flush", now,
                        storage_.dram().clock().now() - now,
                        {"blocks", stats_.flushes.value() - flushes_before});
  }
  return Status::Ok();
}

Status WriteBuffer::FlushAll() {
  const uint64_t flushes_before = stats_.flushes.value();
  const SimTime t0 = storage_.dram().clock().now();
  while (!entries_.empty()) {
    SSMC_RETURN_IF_ERROR(FlushEntry(entries_.begin()));
  }
  if (obs_ != nullptr && stats_.flushes.value() != flushes_before) {
    obs_->tracer().Span(obs_track_, "sync-flush", t0,
                        storage_.dram().clock().now() - t0,
                        {"blocks", stats_.flushes.value() - flushes_before});
  }
  return Status::Ok();
}

uint64_t WriteBuffer::DropAllUnflushed() {
  const uint64_t lost = entries_.size() * page_bytes();
  if (obs_ != nullptr && lost > 0) {
    obs_->tracer().Instant(obs_track_, "buffer-lost",
                           storage_.dram().clock().now(),
                           {"bytes_lost", lost});
  }
  for (auto& [key, entry] : entries_) {
    (void)storage_.FreeDramPage(entry.dram_page);
  }
  entries_.clear();
  lru_.clear();
  return lost;
}

}  // namespace ssmc
