#include "src/storage/storage_manager.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/obs/obs.h"

namespace ssmc {

StorageManager::StorageManager(DramDevice& dram, FlashStore& flash_store,
                               uint64_t page_bytes,
                               ResidencyOptions residency, NvmDevice* nvm)
    : dram_(dram), flash_store_(flash_store), nvm_(nvm),
      page_bytes_(page_bytes) {
  assert(page_bytes_ > 0);
  assert(page_bytes_ == flash_store_.block_bytes() &&
         "DRAM page size must match the flash store block size");
  total_dram_pages_ = dram_.capacity_bytes() / page_bytes_;
  free_dram_pages_.reserve(total_dram_pages_);
  // Hand pages out from low addresses first.
  for (uint64_t p = total_dram_pages_; p > 0; --p) {
    free_dram_pages_.push_back(p - 1);
  }
  dram_page_used_.assign(total_dram_pages_, false);
  page_payloads_.resize(total_dram_pages_);

  if (nvm_ != nullptr) {
    total_nvm_pages_ = nvm_->capacity_bytes() / page_bytes_;
    free_nvm_pages_.reserve(total_nvm_pages_);
    for (uint64_t p = total_nvm_pages_; p > 0; --p) {
      free_nvm_pages_.push_back(p - 1);
    }
    nvm_page_used_.assign(total_nvm_pages_, false);
    nvm_page_payloads_.resize(total_nvm_pages_);
  }

  const uint64_t blocks = flash_store_.num_blocks();
  free_flash_blocks_.reserve(blocks);
  for (uint64_t b = blocks; b > 0; --b) {
    free_flash_blocks_.push_back(b - 1);
  }
  flash_block_used_.assign(blocks, false);

  // Built after the allocators so the residency manager can size its clean
  // cache against total_dram_pages().
  residency_ = std::make_unique<ResidencyManager>(*this, residency);
}

StorageManager::~StorageManager() {
  if (obs_ != nullptr) {
    obs_->metrics().FlushAndRemoveCollector("storage");
  }
}

void StorageManager::AttachObs(Obs* obs) {
  if (obs_ != nullptr && obs_ != obs) {
    obs_->metrics().FlushAndRemoveCollector("storage");
  }
  obs_ = obs;
  residency_->AttachObs(obs);
  if (obs == nullptr) {
    return;
  }
  MetricsRegistry& m = obs->metrics();
  Gauge* free_dram = m.AddGauge("storage/free_dram_pages");
  Gauge* total_dram = m.AddGauge("storage/total_dram_pages");
  Gauge* free_flash = m.AddGauge("storage/free_flash_blocks");
  Gauge* total_flash = m.AddGauge("storage/total_flash_blocks");
  Gauge* free_nvm = nullptr;
  Gauge* total_nvm = nullptr;
  if (nvm_ != nullptr) {
    free_nvm = m.AddGauge("storage/free_nvm_pages");
    total_nvm = m.AddGauge("storage/total_nvm_pages");
  }
  m.AddCollector("storage", [=, this] {
    free_dram->Set(static_cast<int64_t>(free_dram_pages()));
    total_dram->Set(static_cast<int64_t>(total_dram_pages()));
    free_flash->Set(static_cast<int64_t>(free_flash_blocks()));
    total_flash->Set(static_cast<int64_t>(total_flash_blocks()));
    if (free_nvm != nullptr) {
      free_nvm->Set(static_cast<int64_t>(free_nvm_pages()));
      total_nvm->Set(static_cast<int64_t>(total_nvm_pages()));
    }
  });
}

Result<uint64_t> StorageManager::AllocateDramPage() {
  if (free_dram_pages_.empty()) {
    return ResourceExhaustedError("out of DRAM pages");
  }
  const uint64_t page = free_dram_pages_.back();
  free_dram_pages_.pop_back();
  dram_page_used_[page] = true;
  return page;
}

Status StorageManager::FreeDramPage(uint64_t page) {
  if (page >= total_dram_pages_) {
    return OutOfRangeError("no such DRAM page");
  }
  if (!dram_page_used_[page]) {
    return FailedPreconditionError("double free of DRAM page " +
                                   std::to_string(page));
  }
  dram_page_used_[page] = false;
  page_payloads_[page].Reset();
  free_dram_pages_.push_back(page);
  return Status::Ok();
}

Result<uint64_t> StorageManager::AllocateNvmPage() {
  if (free_nvm_pages_.empty()) {
    return ResourceExhaustedError("out of NVM pages");
  }
  const uint64_t page = free_nvm_pages_.back();
  free_nvm_pages_.pop_back();
  nvm_page_used_[page] = true;
  return page;
}

Status StorageManager::FreeNvmPage(uint64_t page) {
  if (page >= total_nvm_pages_) {
    return OutOfRangeError("no such NVM page");
  }
  if (!nvm_page_used_[page]) {
    return FailedPreconditionError("double free of NVM page " +
                                   std::to_string(page));
  }
  nvm_page_used_[page] = false;
  nvm_page_payloads_[page].Reset();
  free_nvm_pages_.push_back(page);
  return Status::Ok();
}

Duration StorageManager::ReadNvmPagePayload(uint64_t page, uint64_t offset,
                                            std::span<uint8_t> out,
                                            IoIssue issue) {
  assert(nvm_ != nullptr);
  assert(page < total_nvm_pages_ && offset + out.size() <= page_bytes_);
  const Result<Duration> d =
      nvm_->Read(NvmPageAddress(page) + offset, out.size(), issue);
  const PayloadRef& ref = nvm_page_payloads_[page];
  if (ref) {
    std::memcpy(out.data(), ref.data() + offset, out.size());
  } else {
    std::memset(out.data(), 0, out.size());
  }
  return d.value_or(0);
}

Duration StorageManager::InstallNvmPagePayload(uint64_t page,
                                               PayloadRef payload,
                                               IoIssue issue) {
  assert(nvm_ != nullptr);
  assert(page < total_nvm_pages_ && payload.size() == page_bytes_);
  const Result<Duration> d =
      nvm_->Write(NvmPageAddress(page), page_bytes_, issue);
  nvm_page_payloads_[page] = std::move(payload);
  return d.value_or(0);
}

PayloadRef StorageManager::ReadNvmPagePayloadRef(uint64_t page,
                                                 IoIssue issue) {
  assert(nvm_ != nullptr);
  assert(page < total_nvm_pages_);
  (void)nvm_->Read(NvmPageAddress(page), page_bytes_, issue);
  PayloadRef& ref = nvm_page_payloads_[page];
  if (!ref) {
    if (!zero_extent_) {
      zero_extent_ = extent_pool().Allocate();
      std::memset(zero_extent_.MutableData(), 0, page_bytes_);
    }
    ref = zero_extent_;
  }
  return ref;
}

Duration StorageManager::ReadPagePayload(uint64_t page, uint64_t offset,
                                         std::span<uint8_t> out) {
  assert(page < total_dram_pages_ && offset + out.size() <= page_bytes_);
  const Duration d = dram_.ChargeAccess(out.size(), /*is_write=*/false);
  const PayloadRef& ref = page_payloads_[page];
  if (ref) {
    std::memcpy(out.data(), ref.data() + offset, out.size());
  } else {
    std::memset(out.data(), 0, out.size());
  }
  return d;
}

Duration StorageManager::WritePagePayload(uint64_t page, uint64_t offset,
                                          std::span<const uint8_t> data) {
  assert(page < total_dram_pages_ && offset + data.size() <= page_bytes_);
  const Duration d = dram_.ChargeAccess(data.size(), /*is_write=*/true);
  PayloadRef& ref = page_payloads_[page];
  if (!ref) {
    if (offset == 0 && data.size() == page_bytes_) {
      ref = extent_pool().AllocateCopy(data.data());
      return d;
    }
    ref = extent_pool().Allocate();
    std::memset(ref.MutableData(), 0, page_bytes_);
  }
  // MutableData clones the extent first when it is aliased (a flushed copy
  // programmed into flash, a shared zero page), so writers never disturb
  // other holders.
  std::memcpy(ref.MutableData() + offset, data.data(), data.size());
  return d;
}

Duration StorageManager::InstallPagePayload(uint64_t page, PayloadRef payload) {
  assert(page < total_dram_pages_ && payload.size() == page_bytes_);
  const Duration d = dram_.ChargeAccess(page_bytes_, /*is_write=*/true);
  page_payloads_[page] = std::move(payload);
  return d;
}

Duration StorageManager::ZeroFillPagePayload(uint64_t page) {
  assert(page < total_dram_pages_);
  const Duration d = dram_.ChargeAccess(page_bytes_, /*is_write=*/true);
  if (!zero_extent_) {
    zero_extent_ = extent_pool().Allocate();
    std::memset(zero_extent_.MutableData(), 0, page_bytes_);
  }
  page_payloads_[page] = zero_extent_;
  return d;
}

PayloadRef StorageManager::ReadPagePayloadRef(uint64_t page) {
  assert(page < total_dram_pages_);
  dram_.ChargeAccess(page_bytes_, /*is_write=*/false);
  PayloadRef& ref = page_payloads_[page];
  if (!ref) {
    if (!zero_extent_) {
      zero_extent_ = extent_pool().Allocate();
      std::memset(zero_extent_.MutableData(), 0, page_bytes_);
    }
    ref = zero_extent_;
  }
  return ref;
}

void StorageManager::DropAllPagePayloads() {
  for (PayloadRef& ref : page_payloads_) {
    ref.Reset();
  }
  zero_extent_.Reset();
}

Status StorageManager::ReserveFlashBlock(uint64_t block) {
  if (block >= flash_store_.num_blocks()) {
    return OutOfRangeError("no such flash block");
  }
  if (flash_block_used_[block]) {
    return AlreadyExistsError("flash block " + std::to_string(block) +
                              " is already in use");
  }
  auto it = std::find(free_flash_blocks_.begin(), free_flash_blocks_.end(),
                      block);
  assert(it != free_flash_blocks_.end());
  free_flash_blocks_.erase(it);
  flash_block_used_[block] = true;
  return Status::Ok();
}

Result<uint64_t> StorageManager::AllocateFlashBlock() {
  if (free_flash_blocks_.empty()) {
    return NoSpaceError("out of flash blocks");
  }
  const uint64_t block = free_flash_blocks_.back();
  free_flash_blocks_.pop_back();
  flash_block_used_[block] = true;
  return block;
}

Status StorageManager::FreeFlashBlock(uint64_t block) {
  if (block >= flash_store_.num_blocks()) {
    return OutOfRangeError("no such flash block");
  }
  if (!flash_block_used_[block]) {
    return FailedPreconditionError("double free of flash block " +
                                   std::to_string(block));
  }
  SSMC_RETURN_IF_ERROR(flash_store_.Trim(block));
  flash_block_used_[block] = false;
  free_flash_blocks_.push_back(block);
  return Status::Ok();
}

}  // namespace ssmc
