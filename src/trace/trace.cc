#include "src/trace/trace.h"

#include <cstdlib>
#include <sstream>

namespace ssmc {

std::string_view TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kCreate:
      return "create";
    case TraceOp::kWrite:
      return "write";
    case TraceOp::kRead:
      return "read";
    case TraceOp::kUnlink:
      return "unlink";
    case TraceOp::kMkdir:
      return "mkdir";
    case TraceOp::kStat:
      return "stat";
    case TraceOp::kTruncate:
      return "truncate";
    case TraceOp::kRename:
      return "rename";
  }
  return "?";
}

namespace {
Result<TraceOp> ParseOp(const std::string& name) {
  if (name == "create") return TraceOp::kCreate;
  if (name == "write") return TraceOp::kWrite;
  if (name == "read") return TraceOp::kRead;
  if (name == "unlink") return TraceOp::kUnlink;
  if (name == "mkdir") return TraceOp::kMkdir;
  if (name == "stat") return TraceOp::kStat;
  if (name == "truncate") return TraceOp::kTruncate;
  if (name == "rename") return TraceOp::kRename;
  return InvalidArgumentError("unknown trace op: " + name);
}
}  // namespace

uint64_t Trace::TotalBytesWritten() const {
  uint64_t total = 0;
  for (const TraceRecord& r : records_) {
    if (r.op == TraceOp::kWrite) {
      total += r.length;
    }
  }
  return total;
}

uint64_t Trace::TotalBytesRead() const {
  uint64_t total = 0;
  for (const TraceRecord& r : records_) {
    if (r.op == TraceOp::kRead) {
      total += r.length;
    }
  }
  return total;
}

SimTime Trace::DurationNs() const {
  return records_.empty() ? 0 : records_.back().at;
}

Trace Trace::Prefix(SimTime cutoff) const {
  Trace out;
  for (const TraceRecord& r : records_) {
    if (r.at <= cutoff) {
      out.Add(r);
    }
  }
  return out;
}

Trace Trace::WithPathPrefix(const std::string& prefix) const {
  Trace out;
  for (TraceRecord r : records_) {
    r.path = prefix + r.path;
    if (!r.path2.empty()) {
      r.path2 = prefix + r.path2;
    }
    out.Add(std::move(r));
  }
  return out;
}

Trace Trace::WithTenant(TenantId tenant) const {
  Trace out;
  for (TraceRecord r : records_) {
    r.tenant = tenant;
    out.Add(std::move(r));
  }
  return out;
}

std::string Trace::ToText() const {
  std::ostringstream oss;
  for (const TraceRecord& r : records_) {
    oss << r.at << ' ' << TraceOpName(r.op) << ' ' << r.path << ' '
        << r.offset << ' ' << r.length;
    if (!r.path2.empty()) {
      oss << ' ' << r.path2;
    }
    if (r.tenant != kDefaultTenant) {
      oss << " t=" << r.tenant;
    }
    oss << '\n';
  }
  return oss.str();
}

Result<Trace> Trace::FromText(const std::string& text) {
  Trace trace;
  std::istringstream iss(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(iss, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    std::istringstream ls(line);
    TraceRecord r;
    std::string op_name;
    if (!(ls >> r.at >> op_name >> r.path >> r.offset >> r.length)) {
      return InvalidArgumentError("malformed trace line " +
                                  std::to_string(line_no));
    }
    Result<TraceOp> op = ParseOp(op_name);
    if (!op.ok()) {
      return op.status();
    }
    r.op = op.value();
    // Optional trailing tokens: a rename destination and/or a "t=<n>"
    // tenant tag, in either order (writers emit path2 first).
    std::string token;
    while (ls >> token) {
      if (token.rfind("t=", 0) == 0) {
        r.tenant = static_cast<TenantId>(
            std::strtoul(token.c_str() + 2, nullptr, 10));
      } else {
        r.path2 = std::move(token);
      }
    }
    trace.Add(std::move(r));
  }
  return trace;
}

}  // namespace ssmc
