// Trace replayer: drives any FileSystem with a trace, measuring per-op
// simulated latency and aggregate throughput. The same trace replayed
// against MemoryFileSystem and DiskFileSystem is the E3 experiment; the same
// trace replayed with different write-buffer sizes is E6.

#ifndef SSMC_SRC_TRACE_REPLAYER_H_
#define SSMC_SRC_TRACE_REPLAYER_H_

#include <array>
#include <string>
#include <unordered_map>

#include "src/fs/file_system.h"
#include "src/sim/clock.h"
#include "src/sim/event_queue.h"
#include "src/sim/io_request.h"
#include "src/sim/io_stats.h"
#include "src/sim/stats.h"
#include "src/trace/trace.h"

namespace ssmc {

class Obs;

struct ReplayReport {
  uint64_t ops = 0;
  uint64_t failures = 0;
  // Bytes successfully transferred. Failed read/write ops contribute nothing
  // here; their requested lengths are tallied separately below so throughput
  // numbers never include partially-failed transfers.
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t failed_read_bytes = 0;   // Requested bytes of failed reads.
  uint64_t failed_write_bytes = 0;  // Requested bytes of failed writes.
  SimTime started = 0;
  SimTime finished = 0;
  LatencyRecorder all_ops;
  // Indexed by static_cast<int>(TraceOp).
  std::array<LatencyRecorder, 8> per_op;

  Duration elapsed() const { return finished - started; }
  double OpsPerSecond() const {
    const double s = static_cast<double>(elapsed()) / kSecond;
    return s > 0 ? static_cast<double>(ops) / s : 0;
  }
  const LatencyRecorder& ForOp(TraceOp op) const {
    return per_op[static_cast<size_t>(op)];
  }

  // Device-level request attribution over the replay window (io_stats.h —
  // the same keyed lane struct FlashDevice::Stats uses): for each
  // scheduling class and each tenant, how much time its requests spent
  // queued behind other work vs being served by the medium. Filled by
  // drivers that own the device (MobileComputer::RunTrace); zero when the
  // replayer is used standalone.
  std::array<IoLaneStats, kNumIoPriorities> io_by_class;
  TenantLaneTable io_by_tenant;
  const IoLaneStats& ForClass(IoPriority p) const {
    return io_by_class[static_cast<size_t>(p)];
  }

  // Per-tier read attribution over the replay window (deltas of the file
  // system's read-source counters): which memory tier served the bytes.
  // Filled by drivers that own the machine (MobileComputer::RunTrace).
  uint64_t tier_dram_read_bytes = 0;   // Write buffer + clean DRAM cache.
  uint64_t tier_nvm_read_bytes = 0;    // NVM cache tier.
  uint64_t tier_flash_read_bytes = 0;  // Straight from flash.

  // Replay-level per-tenant operation latencies (read p50/p99 per tenant is
  // the E14 victim metric). Recorded by the replayer from each record's
  // tenant; a trace that never names one lands entirely in the
  // kDefaultTenant lane.
  TenantLatencyTable by_tenant;

  // Folds another report in (a shard of the same sharded experiment). The
  // merged window spans both reports, so OpsPerSecond() over the merge of
  // concurrent shards is aggregate simulated throughput.
  void Merge(const ReplayReport& other);
};

class TraceReplayer {
 public:
  // If `events` is provided, pending events (flush daemons, battery ticks)
  // run as simulated time advances between operations.
  TraceReplayer(FileSystem& fs, SimClock& clock, EventQueue* events = nullptr);

  // Replays the trace open-loop: each record is issued at max(record time,
  // completion of the previous op). Individual op failures are counted, not
  // fatal (a trace may delete a file twice under failure injection).
  ReplayReport Replay(const Trace& trace);

  // Observability (nullable; null detaches): one "replayer" trace track with
  // a span per replayed record, named after the op, covering issue to
  // completion in simulated time.
  void AttachObs(Obs* obs);

 private:
  // Deterministic content for writes (so read-back checks are possible).
  void FillPattern(const std::string& path, uint64_t offset,
                   std::span<uint8_t> out);
  // The pattern seeds from the path's hash; traces revisit the same paths
  // constantly, so the hash is computed once per path, not per record.
  uint64_t PathHash(const std::string& path);

  FileSystem& fs_;
  SimClock& clock_;
  EventQueue* events_;
  std::unordered_map<std::string, uint64_t> path_hash_cache_;
  Obs* obs_ = nullptr;
  int obs_track_ = 0;
};

}  // namespace ssmc

#endif  // SSMC_SRC_TRACE_REPLAYER_H_
