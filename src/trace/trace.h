// File-system trace records.
//
// The paper's storage-manager argument rests on trace-driven results
// (Ousterhout et al.'s BSD study, Baker et al.'s Sprite study): most files
// are small and short-lived, most bytes move in whole-file sequential
// transfers, and much written data dies young. The original traces are not
// available, so the generator (generator.h) synthesizes traces with those
// published properties; this header defines the timestamped record format
// they share with the replayer, plus text serialization for record/replay.

#ifndef SSMC_SRC_TRACE_TRACE_H_
#define SSMC_SRC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/io_request.h"
#include "src/support/status.h"
#include "src/support/units.h"

namespace ssmc {

enum class TraceOp {
  kCreate,
  kWrite,
  kRead,
  kUnlink,
  kMkdir,
  kStat,
  kTruncate,
  kRename,
};

std::string_view TraceOpName(TraceOp op);

struct TraceRecord {
  SimTime at = 0;  // Issue time.
  TraceOp op = TraceOp::kStat;
  std::string path;
  uint64_t offset = 0;
  uint64_t length = 0;
  std::string path2;  // Rename destination.
  // Tenant issuing the operation. Serialized only when nonzero (as a
  // trailing "t=<n>" token), so single-tenant traces round-trip through the
  // text format unchanged from the pre-tenancy simulator.
  TenantId tenant = kDefaultTenant;

  bool operator==(const TraceRecord& other) const = default;
};

class Trace {
 public:
  void Add(TraceRecord record) { records_.push_back(std::move(record)); }
  const std::vector<TraceRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  // Totals useful for sanity checks and bench headers.
  uint64_t TotalBytesWritten() const;
  uint64_t TotalBytesRead() const;
  SimTime DurationNs() const;

  // Records with issue time <= cutoff (failure-injection prefixes).
  Trace Prefix(SimTime cutoff) const;

  // A copy with every path prefixed by `prefix` (multi-session composition;
  // prefix must be a valid absolute directory path, and callers mkdir it).
  Trace WithPathPrefix(const std::string& prefix) const;

  // A copy with every record attributed to `tenant` (tenant-mix
  // composition: per-user workloads stamped with the user's tenant class).
  Trace WithTenant(TenantId tenant) const;

  // One line per record:
  // "<at> <op> <path> <offset> <length> [<path2>] [t=<tenant>]".
  std::string ToText() const;
  static Result<Trace> FromText(const std::string& text);

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_TRACE_TRACE_H_
