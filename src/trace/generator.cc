#include "src/trace/generator.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace ssmc {

WorkloadOptions OfficeWorkload() {
  WorkloadOptions options;
  options.seed = 1993;
  options.p_read = 0.40;
  options.p_write = 0.30;
  options.p_create = 0.10;
  options.p_delete = 0.08;
  return options;
}

WorkloadOptions WriteHotWorkload() {
  WorkloadOptions options;
  options.seed = 701;
  options.p_read = 0.15;
  options.p_write = 0.60;
  options.p_create = 0.12;
  options.p_delete = 0.10;
  options.hot_skew = 1.2;          // Concentrated overwrites.
  options.p_whole_file = 0.50;
  options.p_short_lived = 0.75;    // Most new data dies young.
  options.short_lived_mean = 15 * kSecond;
  return options;
}

WorkloadOptions ReadMostlyWorkload() {
  WorkloadOptions options;
  options.seed = 2718;
  options.p_read = 0.80;
  options.p_write = 0.05;
  options.p_create = 0.02;
  options.p_delete = 0.01;
  options.p_whole_file = 0.85;
  options.p_short_lived = 0.3;
  return options;
}

WorkloadGenerator::WorkloadGenerator(WorkloadOptions options)
    : options_(options), rng_(options.seed) {}

Trace WorkloadGenerator::Generate() {
  Trace trace;

  struct LiveFile {
    std::string path;
    uint64_t size;
  };
  std::vector<LiveFile> files;
  std::unordered_set<std::string> live_paths;
  // Short-lived files awaiting their scheduled deletion: (deadline, path).
  using Deletion = std::pair<SimTime, std::string>;
  std::priority_queue<Deletion, std::vector<Deletion>, std::greater<>> deaths;

  uint64_t name_counter = 0;
  // Zipf ranks map onto the live set; a fixed-size sampler keeps selection
  // O(log n) while the live set churns.
  ZipfSampler zipf(4096, options_.hot_skew);

  auto pick_file = [&]() -> LiveFile* {
    if (files.empty()) {
      return nullptr;
    }
    const size_t rank = zipf.Sample(rng_) % files.size();
    return &files[rank];
  };

  auto sample_file_size = [&]() -> uint64_t {
    const double size = rng_.NextBoundedPareto(
        options_.file_size_alpha, static_cast<double>(options_.min_file_bytes),
        static_cast<double>(options_.max_file_bytes));
    return static_cast<uint64_t>(size);
  };

  auto create_file = [&](SimTime at) {
    const int dir = static_cast<int>(rng_.NextBelow(
        static_cast<uint64_t>(options_.num_directories)));
    const std::string path = "/dir" + std::to_string(dir) + "/f" +
                             std::to_string(name_counter++);
    const uint64_t size = sample_file_size();
    trace.Add({at, TraceOp::kCreate, path, 0, 0, ""});
    trace.Add({at, TraceOp::kWrite, path, 0, size, ""});
    files.push_back({path, size});
    live_paths.insert(path);
    if (rng_.NextBool(options_.p_short_lived)) {
      const Duration life = static_cast<Duration>(
          rng_.NextExponential(static_cast<double>(options_.short_lived_mean)));
      deaths.emplace(at + std::max<Duration>(life, kMillisecond), path);
    }
  };

  auto remove_file = [&](const std::string& path) {
    live_paths.erase(path);
    auto it = std::find_if(files.begin(), files.end(),
                           [&](const LiveFile& f) { return f.path == path; });
    if (it != files.end()) {
      *it = files.back();
      files.pop_back();
    }
  };

  // --- Population phase ---------------------------------------------------
  SimTime t = 0;
  for (int d = 0; d < options_.num_directories; ++d) {
    trace.Add({t, TraceOp::kMkdir, "/dir" + std::to_string(d), 0, 0, ""});
  }
  for (int i = 0; i < options_.initial_files; ++i) {
    t += kMillisecond;
    create_file(t);
  }

  // --- Steady state --------------------------------------------------------
  const SimTime end = t + options_.duration;
  while (t < end) {
    t += static_cast<Duration>(std::max(
        1.0, rng_.NextExponential(
                 static_cast<double>(options_.mean_interarrival))));

    // Scheduled deaths that fall due before this op.
    while (!deaths.empty() && deaths.top().first <= t) {
      const auto [when, path] = deaths.top();
      deaths.pop();
      if (live_paths.count(path) != 0) {
        trace.Add({when, TraceOp::kUnlink, path, 0, 0, ""});
        remove_file(path);
      }
    }

    const double u = rng_.NextDouble();
    if (u < options_.p_create || files.empty()) {
      create_file(t);
      continue;
    }
    LiveFile* file = pick_file();
    if (u < options_.p_create + options_.p_delete) {
      trace.Add({t, TraceOp::kUnlink, file->path, 0, 0, ""});
      remove_file(file->path);
    } else if (u < options_.p_create + options_.p_delete + options_.p_write) {
      if (rng_.NextBool(options_.p_whole_file)) {
        trace.Add({t, TraceOp::kWrite, file->path, 0, file->size, ""});
      } else {
        const uint64_t len = std::max<uint64_t>(
            1, static_cast<uint64_t>(rng_.NextExponential(
                   static_cast<double>(options_.partial_io_bytes))));
        const uint64_t offset = rng_.NextBelow(std::max<uint64_t>(1, file->size));
        trace.Add({t, TraceOp::kWrite, file->path, offset, len, ""});
        file->size = std::max(file->size, offset + len);
      }
    } else if (u < options_.p_create + options_.p_delete + options_.p_write +
                       options_.p_read) {
      if (rng_.NextBool(options_.p_whole_file)) {
        trace.Add({t, TraceOp::kRead, file->path, 0, file->size, ""});
      } else {
        const uint64_t offset = rng_.NextBelow(std::max<uint64_t>(1, file->size));
        const uint64_t len = std::max<uint64_t>(
            1, std::min(file->size - offset,
                        static_cast<uint64_t>(rng_.NextExponential(
                            static_cast<double>(options_.partial_io_bytes)))));
        trace.Add({t, TraceOp::kRead, file->path, offset, len, ""});
      }
    } else {
      trace.Add({t, TraceOp::kStat, file->path, 0, 0, ""});
    }
  }
  return trace;
}

}  // namespace ssmc
