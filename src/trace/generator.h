// Synthetic file-system workload generator.
//
// Deterministically (seeded) generates traces reproducing the distributional
// facts the paper's argument relies on, as published in the trace studies it
// cites ([8] Ousterhout et al. 1985, [3] Baker et al. 1991):
//  * most files are small — file sizes draw from a bounded Pareto;
//  * most accesses are whole-file and sequential;
//  * access frequency is heavily skewed (a small hot set gets most traffic);
//  * a large share of new data dies young: short-lived files are deleted,
//    and hot file blocks are overwritten, within tens of seconds.
//
// Three calibrated profiles drive the experiments:
//  * OfficeWorkload      — mixed read/write, the E3/E6 default;
//  * WriteHotWorkload    — overwrite-heavy, stresses the write buffer & FTL;
//  * ReadMostlyWorkload  — scan-heavy, the E9 read-mostly corner.

#ifndef SSMC_SRC_TRACE_GENERATOR_H_
#define SSMC_SRC_TRACE_GENERATOR_H_

#include <cstdint>

#include "src/support/rng.h"
#include "src/trace/trace.h"

namespace ssmc {

struct WorkloadOptions {
  uint64_t seed = 42;
  Duration duration = 10 * kMinute;
  // Mean inter-arrival time between operations (exponential).
  Duration mean_interarrival = 50 * kMillisecond;

  // Namespace shape.
  int num_directories = 8;
  int initial_files = 64;

  // File sizes: bounded Pareto (alpha ~1.1 gives the observed small-file
  // skew) between min and max.
  double file_size_alpha = 1.1;
  uint64_t min_file_bytes = 256;
  uint64_t max_file_bytes = 256 * 1024;

  // Operation mix (fractions; remainder after these is stat traffic).
  double p_read = 0.40;
  double p_write = 0.30;
  double p_create = 0.10;
  double p_delete = 0.08;

  // Fraction of reads/writes that touch the whole file sequentially.
  double p_whole_file = 0.70;
  // Zipf skew for picking which file an op touches (higher = hotter set).
  double hot_skew = 1.0;
  // Fraction of created files that are short-lived, and their mean lifetime.
  double p_short_lived = 0.6;
  Duration short_lived_mean = 20 * kSecond;
  // Partial-op transfer size (mean, exponential) for non-whole-file I/O.
  uint64_t partial_io_bytes = 2048;
};

// Calibrated profiles.
WorkloadOptions OfficeWorkload();
WorkloadOptions WriteHotWorkload();
WorkloadOptions ReadMostlyWorkload();

class WorkloadGenerator {
 public:
  explicit WorkloadGenerator(WorkloadOptions options);

  // Generates the full trace, including the initial mkdir/create/write
  // population phase at t=0..population, then the steady-state mix.
  Trace Generate();

 private:
  WorkloadOptions options_;
  Rng rng_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_TRACE_GENERATOR_H_
