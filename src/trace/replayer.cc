#include "src/trace/replayer.h"

#include <algorithm>
#include <vector>

#include "src/obs/obs.h"

namespace ssmc {

void ReplayReport::Merge(const ReplayReport& other) {
  if (other.ops == 0 && other.elapsed() == 0) {
    return;
  }
  if (ops == 0 && elapsed() == 0) {
    started = other.started;
    finished = other.finished;
  } else {
    started = std::min(started, other.started);
    finished = std::max(finished, other.finished);
  }
  ops += other.ops;
  failures += other.failures;
  bytes_read += other.bytes_read;
  bytes_written += other.bytes_written;
  failed_read_bytes += other.failed_read_bytes;
  failed_write_bytes += other.failed_write_bytes;
  all_ops.Merge(other.all_ops);
  for (size_t i = 0; i < per_op.size(); ++i) {
    per_op[i].Merge(other.per_op[i]);
  }
  for (size_t i = 0; i < io_by_class.size(); ++i) {
    io_by_class[i].Merge(other.io_by_class[i]);
  }
  io_by_tenant.Merge(other.io_by_tenant);
  by_tenant.Merge(other.by_tenant);
  tier_dram_read_bytes += other.tier_dram_read_bytes;
  tier_nvm_read_bytes += other.tier_nvm_read_bytes;
  tier_flash_read_bytes += other.tier_flash_read_bytes;
}

TraceReplayer::TraceReplayer(FileSystem& fs, SimClock& clock,
                             EventQueue* events)
    : fs_(fs), clock_(clock), events_(events) {}

void TraceReplayer::AttachObs(Obs* obs) {
  obs_ = obs;
  if (obs_ != nullptr) {
    obs_track_ = obs_->tracer().RegisterTrack("replayer");
  }
}

uint64_t TraceReplayer::PathHash(const std::string& path) {
  const auto [it, inserted] = path_hash_cache_.try_emplace(path, 0);
  if (inserted) {
    it->second = std::hash<std::string>()(path);
  }
  return it->second;
}

void TraceReplayer::FillPattern(const std::string& path, uint64_t offset,
                                std::span<uint8_t> out) {
  const uint64_t h = PathHash(path);
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<uint8_t>((h + offset + i) * 131);
  }
}

ReplayReport TraceReplayer::Replay(const Trace& trace) {
  ReplayReport report;
  report.started = clock_.now();
  std::vector<uint8_t> buffer;
  // One allocation up front instead of growing across the replay.
  uint64_t max_length = 0;
  for (const TraceRecord& r : trace.records()) {
    max_length = std::max(max_length, r.length);
  }
  buffer.reserve(max_length);

  // Per-record tenant propagation: the file system stamps the current
  // tenant onto every device I/O it issues. Only transitions pay the
  // virtual call, so a single-tenant trace replays with one (the reset).
  TenantId current_tenant = kDefaultTenant;
  fs_.set_current_tenant(current_tenant);

  for (const TraceRecord& r : trace.records()) {
    if (r.tenant != current_tenant) {
      current_tenant = r.tenant;
      fs_.set_current_tenant(current_tenant);
    }
    // Advance to the issue time (unless we are already running behind).
    const SimTime issue_at = std::max(clock_.now(), report.started + r.at);
    if (events_ != nullptr) {
      events_->RunUntil(issue_at);
    } else {
      clock_.AdvanceTo(issue_at);
    }

    const SimTime before = clock_.now();
    Status status;
    switch (r.op) {
      case TraceOp::kCreate:
        status = fs_.Create(r.path);
        break;
      case TraceOp::kMkdir:
        status = fs_.Mkdir(r.path);
        break;
      case TraceOp::kUnlink:
        status = fs_.Unlink(r.path);
        break;
      case TraceOp::kTruncate:
        status = fs_.Truncate(r.path, r.length);
        break;
      case TraceOp::kRename:
        status = fs_.Rename(r.path, r.path2);
        break;
      case TraceOp::kStat:
        status = fs_.Stat(r.path).status();
        break;
      case TraceOp::kWrite: {
        buffer.resize(r.length);
        FillPattern(r.path, r.offset, buffer);
        Result<uint64_t> n = fs_.Write(r.path, r.offset, buffer);
        status = n.status();
        if (n.ok()) {
          report.bytes_written += n.value();
        } else {
          report.failed_write_bytes += r.length;
        }
        break;
      }
      case TraceOp::kRead: {
        buffer.resize(r.length);
        Result<uint64_t> n = fs_.Read(r.path, r.offset, buffer);
        status = n.status();
        if (n.ok()) {
          report.bytes_read += n.value();
        } else {
          report.failed_read_bytes += r.length;
        }
        break;
      }
    }
    const Duration latency = clock_.now() - before;
    if (obs_ != nullptr) {
      // TraceOpName returns views over string literals, so .data() is a
      // stable null-terminated name.
      obs_->tracer().Span(obs_track_, TraceOpName(r.op).data(), before,
                          latency, {"bytes", r.length},
                          {"ok", status.ok() ? 1u : 0u});
    }
    report.ops += 1;
    if (!status.ok()) {
      report.failures += 1;
    }
    report.all_ops.Record(latency);
    report.per_op[static_cast<size_t>(r.op)].Record(latency);
    if (r.op == TraceOp::kRead) {
      report.by_tenant.For(r.tenant).reads.Record(latency);
    } else if (r.op == TraceOp::kWrite) {
      report.by_tenant.For(r.tenant).writes.Record(latency);
    }
  }
  report.finished = clock_.now();
  return report;
}

}  // namespace ssmc
