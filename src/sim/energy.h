// Energy accounting. Devices report (power level, duration) windows to an
// EnergyMeter; the meter integrates them into nanojoules. Power levels are in
// milliwatts; 1 mW * 1 ns = 1e-3 nJ, so we accumulate in double nanojoules.
//
// Each device keeps one meter; MobileComputer sums them for system energy,
// which feeds the battery drain model and the E9 sizing experiment.

#ifndef SSMC_SRC_SIM_ENERGY_H_
#define SSMC_SRC_SIM_ENERGY_H_

#include <string>

#include "src/support/units.h"

namespace ssmc {

class EnergyMeter {
 public:
  // Adds energy for `active` ns spent at `milliwatts`.
  void AddActive(double milliwatts, Duration active) {
    const double nj = milliwatts * 1e-3 * static_cast<double>(active);
    active_nj_ += nj;
    total_nj_ += nj;
  }

  // Adds idle (standby) energy for `idle` ns at `milliwatts`.
  void AddIdle(double milliwatts, Duration idle) {
    const double nj = milliwatts * 1e-3 * static_cast<double>(idle);
    idle_nj_ += nj;
    total_nj_ += nj;
  }

  double total_nanojoules() const { return total_nj_; }
  double active_nanojoules() const { return active_nj_; }
  double idle_nanojoules() const { return idle_nj_; }

  void Reset() {
    total_nj_ = 0;
    active_nj_ = 0;
    idle_nj_ = 0;
  }

  std::string Summary() const {
    return FormatEnergy(total_nj_) + " (active " + FormatEnergy(active_nj_) +
           ", idle " + FormatEnergy(idle_nj_) + ")";
  }

 private:
  double total_nj_ = 0;
  double active_nj_ = 0;
  double idle_nj_ = 0;
};

}  // namespace ssmc

#endif  // SSMC_SRC_SIM_ENERGY_H_
