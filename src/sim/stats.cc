#include "src/sim/stats.h"

#include <bit>
#include <cassert>

namespace ssmc {

namespace {
int BucketFor(uint64_t sample) {
  if (sample == 0) {
    return 0;
  }
  return 64 - std::countl_zero(sample);
}
}  // namespace

void Histogram::Record(uint64_t sample) {
  const int b = BucketFor(sample);
  assert(b >= 0 && b < kBuckets);
  buckets_[b] += 1;
  count_ += 1;
  sum_ += sample;
  min_ = std::min(min_, sample);
  max_ = std::max(max_, sample);
}

uint64_t Histogram::Quantile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(count_ - 1));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      if (b == 0) {
        return 0;
      }
      // Upper edge of bucket b is 2^b - 1, clamped to the observed max.
      const uint64_t edge =
          b >= 63 ? std::numeric_limits<uint64_t>::max() : (1ULL << b) - 1;
      return std::min(edge, max_);
    }
  }
  return max_;
}

void Histogram::Reset() {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
  min_ = std::numeric_limits<uint64_t>::max();
  max_ = 0;
}

void Histogram::Merge(const Histogram& other) {
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[b] += other.buckets_[b];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.count_ > 0) {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
}

std::string LatencyRecorder::Summary() const {
  if (count() == 0) {
    return "no samples";
  }
  return "mean " + FormatDuration(static_cast<Duration>(mean_ns())) + ", p50 " +
         FormatDuration(static_cast<Duration>(p50_ns())) + ", p99 " +
         FormatDuration(static_cast<Duration>(p99_ns())) + ", max " +
         FormatDuration(static_cast<Duration>(max_ns())) +
         " (n=" + std::to_string(count()) + ")";
}

}  // namespace ssmc
