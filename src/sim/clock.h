// Simulated clock. The whole simulator is single-threaded and synchronous:
// components advance the shared clock as they consume simulated time, and a
// small event queue (event_queue.h) handles deferred work such as periodic
// write-buffer flushes and battery drain.

#ifndef SSMC_SRC_SIM_CLOCK_H_
#define SSMC_SRC_SIM_CLOCK_H_

#include <cassert>

#include "src/support/units.h"

namespace ssmc {

class SimClock {
 public:
  SimClock() = default;

  SimTime now() const { return now_; }

  // Moves time forward by d (>= 0).
  void Advance(Duration d) {
    assert(d >= 0);
    now_ += d;
  }

  // Moves time forward to t; t must not be in the past.
  void AdvanceTo(SimTime t) {
    assert(t >= now_);
    now_ = t;
  }

  // Resets to zero (used between experiment runs).
  void Reset() { now_ = 0; }

 private:
  SimTime now_ = 0;
};

}  // namespace ssmc

#endif  // SSMC_SRC_SIM_CLOCK_H_
