// Keyed I/O attribution — the one struct counting "who waited how long for
// how much service" at every layer that attributes I/O time.
//
// FlashDevice::Stats and ReplayReport used to hand-roll parallel per-class
// arrays (requests / queue_wait_ns / service_ns each); per-tenant accounting
// would have been a third copy. IoLaneStats is that triple, once; a lane is
// any attribution key — a priority class (dense array of kNumIoPriorities)
// or a tenant (sparse TenantTable, since a machine typically sees a handful
// of tenant ids out of a 16-bit space). The same table shape carries the
// storage layers' per-tenant op/byte counters (TenantIoStats) and the
// replayer's per-tenant latency recorders (TenantLatency).

#ifndef SSMC_SRC_SIM_IO_STATS_H_
#define SSMC_SRC_SIM_IO_STATS_H_

#include <cstdint>
#include <vector>

#include "src/sim/io_request.h"
#include "src/sim/stats.h"

namespace ssmc {

// Sparse per-tenant table: a sorted vector of (tenant, T) pairs. Lookup is
// linear — the table holds as many entries as distinct tenants actually
// seen, which is small by construction. T needs Merge(const T&).
template <typename T>
class TenantTable {
 public:
  struct Entry {
    TenantId tenant = kDefaultTenant;
    T value{};
  };

  // The value for `tenant`, inserted (sorted by tenant id) on first use.
  T& For(TenantId tenant) {
    size_t i = 0;
    while (i < entries_.size() && entries_[i].tenant < tenant) {
      ++i;
    }
    if (i == entries_.size() || entries_[i].tenant != tenant) {
      entries_.insert(entries_.begin() + static_cast<ptrdiff_t>(i),
                      Entry{tenant, {}});
    }
    return entries_[i].value;
  }

  // The value for `tenant`, or null if the tenant was never seen.
  const T* Find(TenantId tenant) const {
    for (const Entry& e : entries_) {
      if (e.tenant == tenant) {
        return &e.value;
      }
    }
    return nullptr;
  }

  const std::vector<Entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

  void Merge(const TenantTable& other) {
    for (const Entry& e : other.entries_) {
      For(e.tenant).Merge(e.value);
    }
  }

 private:
  std::vector<Entry> entries_;  // Sorted by tenant id.
};

// Time attribution for one lane (priority class or tenant).
struct IoLaneStats {
  Counter requests;
  Counter queue_wait_ns;
  Counter service_ns;

  void Merge(const IoLaneStats& other) {
    requests.Merge(other.requests);
    queue_wait_ns.Merge(other.queue_wait_ns);
    service_ns.Merge(other.service_ns);
  }
};

// Per-tenant time attribution, plus the delta extraction a machine uses to
// window a device's cumulative table to one trace replay.
class TenantLaneTable : public TenantTable<IoLaneStats> {
 public:
  // Adds (after - before) for every lane, keyed by tenant.
  void AddDelta(const TenantLaneTable& after, const TenantLaneTable& before) {
    for (const Entry& e : after.entries()) {
      const IoLaneStats* base = before.Find(e.tenant);
      IoLaneStats& lane = For(e.tenant);
      lane.requests.Add(e.value.requests.value() -
                        (base ? base->requests.value() : 0));
      lane.queue_wait_ns.Add(e.value.queue_wait_ns.value() -
                             (base ? base->queue_wait_ns.value() : 0));
      lane.service_ns.Add(e.value.service_ns.value() -
                          (base ? base->service_ns.value() : 0));
    }
  }
};

// Op/byte attribution for one tenant at a storage layer (file system, write
// buffer, flash store). Layers fill the fields that apply to them and leave
// the rest zero; `relocations` is the FTL's cleaner-move count, billed to
// the tenant owning the relocated data (the per-tenant write-amplification
// numerator).
struct TenantIoStats {
  Counter reads;
  Counter read_bytes;
  Counter writes;
  Counter written_bytes;
  Counter relocations;

  void Merge(const TenantIoStats& other) {
    reads.Merge(other.reads);
    read_bytes.Merge(other.read_bytes);
    writes.Merge(other.writes);
    written_bytes.Merge(other.written_bytes);
    relocations.Merge(other.relocations);
  }
};
using TenantIoTable = TenantTable<TenantIoStats>;

// Per-tenant latency recorders (reads and writes separately): the
// replay-level view behind per-tenant SLO metrics (read p50/p99).
struct TenantLatency {
  LatencyRecorder reads;
  LatencyRecorder writes;

  void Merge(const TenantLatency& other) {
    reads.Merge(other.reads);
    writes.Merge(other.writes);
  }
};
using TenantLatencyTable = TenantTable<TenantLatency>;

}  // namespace ssmc

#endif  // SSMC_SRC_SIM_IO_STATS_H_
