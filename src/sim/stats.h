// Statistics primitives: counters, distributions, and latency recorders.
//
// Histogram uses fixed log2 bucketing so percentile queries are cheap and
// allocation-free after construction. LatencyRecorder wraps a Histogram with
// sum/min/max so benches can report mean and tail latencies.

#ifndef SSMC_SRC_SIM_STATS_H_
#define SSMC_SRC_SIM_STATS_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <limits>
#include <string>

#include "src/support/units.h"

namespace ssmc {

// Monotonic event/byte counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

  // Folds another counter in (sharded runs aggregate into one report).
  void Merge(const Counter& other) { value_ += other.value_; }

 private:
  uint64_t value_ = 0;
};

// Log2-bucketed histogram of non-negative 64-bit samples. Bucket b holds
// samples in [2^(b-1), 2^b) with bucket 0 holding {0}. Supports approximate
// quantiles (answer is the upper bound of the containing bucket, i.e. within
// 2x of the true value — adequate for order-of-magnitude latency tails).
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(uint64_t sample);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  // Approximate quantile, q in [0, 1]. Returns the upper edge of the bucket
  // containing the q-th sample (exact for min/max extremes).
  uint64_t Quantile(double q) const;

  uint64_t bucket_count(int b) const { return buckets_[b]; }

  void Reset();

  // Merges another histogram into this one.
  void Merge(const Histogram& other);

 private:
  std::array<uint64_t, kBuckets> buckets_ = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = std::numeric_limits<uint64_t>::max();
  uint64_t max_ = 0;
};

// Records operation latencies (durations in ns).
class LatencyRecorder {
 public:
  void Record(Duration d) { hist_.Record(static_cast<uint64_t>(std::max<Duration>(d, 0))); }

  uint64_t count() const { return hist_.count(); }
  double mean_ns() const { return hist_.mean(); }
  uint64_t min_ns() const { return hist_.min(); }
  uint64_t max_ns() const { return hist_.max(); }
  uint64_t p50_ns() const { return hist_.Quantile(0.50); }
  uint64_t p95_ns() const { return hist_.Quantile(0.95); }
  uint64_t p99_ns() const { return hist_.Quantile(0.99); }
  uint64_t total_ns() const { return hist_.sum(); }

  const Histogram& histogram() const { return hist_; }
  void Reset() { hist_.Reset(); }

  // Merges another recorder's samples into this one. Because the histogram
  // is a fixed bucketing, merging shard recorders is exactly equivalent to
  // one recorder having seen the concatenated sample streams.
  void Merge(const LatencyRecorder& other) { hist_.Merge(other.hist_); }

  // "mean 1.2 us, p99 14 us, max 30 us (n=...)"
  std::string Summary() const;

 private:
  Histogram hist_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_SIM_STATS_H_
