#include "src/sim/event_queue.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace ssmc {
namespace {

constexpr int32_t kEmptySlot = -1;
constexpr int32_t kTombstone = -2;

// Compaction floor: below this many dead slots the linear sweep costs more
// than the memory it returns.
constexpr size_t kCompactFloor = 64;

uint64_t HashTime(SimTime t) {
  // splitmix64 finalizer — timestamps are often multiples of large powers of
  // ten, so identity hashing would cluster badly under power-of-two masking.
  uint64_t x = static_cast<uint64_t>(t);
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

bool ValidateFromEnv() {
  const char* v = std::getenv("SSMC_VALIDATE_EVENTS");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

}  // namespace

struct EventQueue::OracleState {
  explicit OracleState(SimClock& clock) : legacy(clock) {}
  LegacyEventQueue legacy;
  // Our EventId -> the legacy queue's id for the mirrored event.
  std::unordered_map<EventId, LegacyEventQueue::EventId> ids;
};

EventQueue::EventQueue(SimClock& clock, bool validate_with_legacy)
    : clock_(clock) {
  if (validate_with_legacy || ValidateFromEnv()) {
    oracle_ = std::make_unique<OracleState>(clock_);
  }
}

EventQueue::~EventQueue() = default;

// --- Slot and bucket pools --------------------------------------------------

int32_t EventQueue::AllocSlot() {
  if (free_slot_ != kEmptySlot) {
    const int32_t s = free_slot_;
    free_slot_ = slots_[static_cast<size_t>(s)].next;
    return s;
  }
  slots_.emplace_back();
  return static_cast<int32_t>(slots_.size() - 1);
}

void EventQueue::FreeSlot(int32_t s) {
  Slot& slot = slots_[static_cast<size_t>(s)];
  slot.fn = nullptr;
  slot.armed = false;
  ++slot.gen;  // Invalidate any EventId still pointing here.
  slot.next = free_slot_;
  free_slot_ = s;
}

int32_t EventQueue::AllocBucket(SimTime at) {
  int32_t b;
  if (free_bucket_ != kEmptySlot) {
    b = free_bucket_;
    free_bucket_ = buckets_[static_cast<size_t>(b)].next_free;
  } else {
    buckets_.emplace_back();
    b = static_cast<int32_t>(buckets_.size() - 1);
  }
  Bucket& bucket = buckets_[static_cast<size_t>(b)];
  bucket.at = at;
  bucket.head = bucket.tail = kEmptySlot;
  bucket.next_free = kEmptySlot;
  return b;
}

void EventQueue::FreeBucket(int32_t b) {
  buckets_[static_cast<size_t>(b)].next_free = free_bucket_;
  free_bucket_ = b;
}

// --- Timestamp table --------------------------------------------------------

int32_t EventQueue::FindBucket(SimTime at) const {
  if (table_.empty()) {
    return kEmptySlot;
  }
  const size_t mask = table_.size() - 1;
  size_t i = HashTime(at) & mask;
  for (;;) {
    const int32_t e = table_[i];
    if (e == kEmptySlot) {
      return kEmptySlot;
    }
    if (e != kTombstone && buckets_[static_cast<size_t>(e)].at == at) {
      return e;
    }
    i = (i + 1) & mask;
  }
}

void EventQueue::TableInsert(SimTime at, int32_t bucket) {
  // Keep load (including tombstones) under 1/2; rehashing also clears
  // tombstones.
  if (table_.empty() || (table_used_ + 1) * 2 > table_.size()) {
    Rehash(std::max<size_t>(16, table_.size() * 2));
  }
  const size_t mask = table_.size() - 1;
  size_t i = HashTime(at) & mask;
  while (table_[i] != kEmptySlot && table_[i] != kTombstone) {
    i = (i + 1) & mask;
  }
  if (table_[i] == kEmptySlot) {
    ++table_used_;
  }
  table_[i] = bucket;
  ++table_live_;
}

void EventQueue::TableErase(SimTime at) {
  const size_t mask = table_.size() - 1;
  size_t i = HashTime(at) & mask;
  for (;;) {
    const int32_t e = table_[i];
    assert(e != kEmptySlot && "erasing absent bucket time");
    if (e != kTombstone && e != kEmptySlot &&
        buckets_[static_cast<size_t>(e)].at == at) {
      table_[i] = kTombstone;
      --table_live_;
      return;
    }
    i = (i + 1) & mask;
  }
}

void EventQueue::Rehash(size_t new_slots) {
  std::vector<int32_t> old = std::move(table_);
  table_.assign(new_slots, kEmptySlot);
  table_used_ = 0;
  const size_t mask = table_.size() - 1;
  for (const int32_t e : old) {
    if (e == kEmptySlot || e == kTombstone) {
      continue;
    }
    size_t i = HashTime(buckets_[static_cast<size_t>(e)].at) & mask;
    while (table_[i] != kEmptySlot) {
      i = (i + 1) & mask;
    }
    table_[i] = e;
    ++table_used_;
  }
}

int32_t EventQueue::FindOrCreateBucket(SimTime at) {
  const int32_t found = FindBucket(at);
  if (found != kEmptySlot) {
    return found;
  }
  const int32_t b = AllocBucket(at);
  TableInsert(at, b);
  HeapPush(b);
  return b;
}

// --- Bucket heap ------------------------------------------------------------

void EventQueue::HeapPush(int32_t b) {
  heap_.push_back(b);
  size_t i = heap_.size() - 1;
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (buckets_[static_cast<size_t>(heap_[parent])].at <=
        buckets_[static_cast<size_t>(heap_[i])].at) {
      break;
    }
    std::swap(heap_[parent], heap_[i]);
    i = parent;
  }
}

int32_t EventQueue::HeapPopMin() {
  const int32_t top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  size_t i = 0;
  const size_t n = heap_.size();
  for (;;) {
    const size_t l = 2 * i + 1;
    const size_t r = l + 1;
    size_t m = i;
    if (l < n && buckets_[static_cast<size_t>(heap_[l])].at <
                     buckets_[static_cast<size_t>(heap_[m])].at) {
      m = l;
    }
    if (r < n && buckets_[static_cast<size_t>(heap_[r])].at <
                     buckets_[static_cast<size_t>(heap_[m])].at) {
      m = r;
    }
    if (m == i) {
      break;
    }
    std::swap(heap_[i], heap_[m]);
    i = m;
  }
  return top;
}

// --- Public API -------------------------------------------------------------

EventQueue::EventId EventQueue::ScheduleAt(SimTime at, Callback fn) {
  assert(at >= clock_.now());
  const int32_t s = AllocSlot();
  Slot& slot = slots_[static_cast<size_t>(s)];
  slot.at = at;
  slot.fn = std::move(fn);
  slot.next = kEmptySlot;
  slot.armed = true;
  ++pending_;
  const int32_t b = FindOrCreateBucket(at);
  Bucket& bucket = buckets_[static_cast<size_t>(b)];
  if (bucket.tail == kEmptySlot) {
    bucket.head = s;
  } else {
    slots_[static_cast<size_t>(bucket.tail)].next = s;
  }
  bucket.tail = s;
  const EventId id = MakeId(static_cast<uint32_t>(s), slot.gen);
  if (oracle_) {
    OracleSchedule(at, id);
  }
  return id;
}

bool EventQueue::Cancel(EventId id) {
  const uint32_t s = static_cast<uint32_t>(id);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (s >= slots_.size()) {
    return false;
  }
  Slot& slot = slots_[s];
  if (slot.gen != gen || !slot.armed) {
    return false;
  }
  slot.fn = nullptr;  // Destroy now: cancellation releases captures.
  slot.armed = false;
  --pending_;
  ++cancelled_;
  if (oracle_) {
    OracleCancel(id);
  }
  CompactIfNeeded();
  return true;
}

void EventQueue::DrainBucket(int32_t b) {
  running_bucket_ = b;
  const SimTime at = buckets_[static_cast<size_t>(b)].at;
  if (at > clock_.now()) {
    clock_.AdvanceTo(at);
  }
  // Callbacks may append to this chain (same-time cascades) or cancel later
  // chain members, so re-read the head every iteration.
  for (;;) {
    Bucket& bucket = buckets_[static_cast<size_t>(b)];
    const int32_t s = bucket.head;
    if (s == kEmptySlot) {
      break;
    }
    Slot& slot = slots_[static_cast<size_t>(s)];
    bucket.head = slot.next;
    if (bucket.head == kEmptySlot) {
      bucket.tail = kEmptySlot;
    }
    if (!slot.armed) {
      --cancelled_;
      FreeSlot(s);
      continue;
    }
    Callback fn = std::move(slot.fn);
    slot.fn = nullptr;
    slot.armed = false;
    --pending_;
    const EventId id = MakeId(static_cast<uint32_t>(s), slot.gen);
    FreeSlot(s);
    if (oracle_) {
      OracleCheckFire(at, id);
    }
    fn();
  }
  TableErase(at);
  FreeBucket(b);
  running_bucket_ = kEmptySlot;
}

void EventQueue::RunUntil(SimTime t) {
  while (!heap_.empty()) {
    const int32_t b = heap_.front();
    if (buckets_[static_cast<size_t>(b)].at > t) {
      break;
    }
    HeapPopMin();
    DrainBucket(b);
  }
  if (oracle_) {
    OracleCheckDrained(t);
  }
  if (t > clock_.now()) {
    clock_.AdvanceTo(t);
  }
}

void EventQueue::RunAll() {
  while (!heap_.empty()) {
    DrainBucket(HeapPopMin());
  }
  if (oracle_) {
    OracleCheckDrained(std::numeric_limits<SimTime>::max());
  }
}

// --- Compaction -------------------------------------------------------------

void EventQueue::CompactIfNeeded() {
  // "More than half of all chained slots are dead": dead > live.
  if (cancelled_ > kCompactFloor && cancelled_ > pending_) {
    Compact();
  }
}

void EventQueue::Compact() {
  // The running bucket is skipped: its drain loop reclaims dead slots itself
  // and owns the chain head while callbacks run.
  size_t out = 0;
  for (size_t i = 0; i < heap_.size(); ++i) {
    const int32_t b = heap_[i];
    Bucket& bucket = buckets_[static_cast<size_t>(b)];
    int32_t prev = kEmptySlot;
    int32_t s = bucket.head;
    while (s != kEmptySlot) {
      Slot& slot = slots_[static_cast<size_t>(s)];
      const int32_t next = slot.next;
      if (!slot.armed) {
        if (prev == kEmptySlot) {
          bucket.head = next;
        } else {
          slots_[static_cast<size_t>(prev)].next = next;
        }
        if (bucket.tail == s) {
          bucket.tail = prev;
        }
        --cancelled_;
        FreeSlot(s);
      } else {
        prev = s;
      }
      s = next;
    }
    if (bucket.head == kEmptySlot) {
      TableErase(bucket.at);
      FreeBucket(b);
    } else {
      heap_[out++] = b;
    }
  }
  heap_.resize(out);
  std::make_heap(heap_.begin(), heap_.end(), [this](int32_t a, int32_t b) {
    return buckets_[static_cast<size_t>(a)].at >
           buckets_[static_cast<size_t>(b)].at;
  });
}

// --- Legacy oracle ----------------------------------------------------------

namespace {

[[noreturn]] void OracleDie(const char* what, SimTime at) {
  std::fprintf(stderr,
               "EventQueue validate mode: calendar queue diverged from the "
               "legacy priority queue (%s at t=%lld)\n",
               what, static_cast<long long>(at));
  std::abort();
}

}  // namespace

void EventQueue::OracleSchedule(SimTime at, EventId id) {
  oracle_->ids.emplace(id, oracle_->legacy.ScheduleAt(at, [] {}));
}

void EventQueue::OracleCancel(EventId id) {
  const auto it = oracle_->ids.find(id);
  assert(it != oracle_->ids.end());
  if (!oracle_->legacy.Cancel(it->second)) {
    OracleDie("cancel accepted here, rejected by legacy", 0);
  }
  oracle_->ids.erase(it);
}

void EventQueue::OracleCheckFire(SimTime at, EventId id) {
  SimTime legacy_at = 0;
  LegacyEventQueue::EventId legacy_id = 0;
  if (!oracle_->legacy.PopDue(at, &legacy_at, &legacy_id)) {
    OracleDie("fired an event the legacy queue does not have due", at);
  }
  const auto it = oracle_->ids.find(id);
  assert(it != oracle_->ids.end());
  if (legacy_at != at || legacy_id != it->second) {
    OracleDie("run order mismatch", at);
  }
  oracle_->ids.erase(it);
}

void EventQueue::OracleCheckDrained(SimTime t) {
  SimTime legacy_at = 0;
  LegacyEventQueue::EventId legacy_id = 0;
  if (oracle_->legacy.PopDue(t, &legacy_at, &legacy_id)) {
    OracleDie("legacy queue still had a due event after a drain", legacy_at);
  }
  if (oracle_->legacy.pending() != pending_) {
    OracleDie("pending() mismatch after drain", t);
  }
}

}  // namespace ssmc
