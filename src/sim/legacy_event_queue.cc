#include "src/sim/legacy_event_queue.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace ssmc {

LegacyEventQueue::EventId LegacyEventQueue::ScheduleAt(SimTime at,
                                                       Callback fn) {
  assert(at >= clock_.now());
  const EventId id = next_id_++;
  heap_.push(Event{at, next_seq_++, id});
  callbacks_.emplace_back(id, std::move(fn));
  return id;
}

LegacyEventQueue::Callback LegacyEventQueue::TakeCallback(EventId id) {
  auto it = std::find_if(callbacks_.begin(), callbacks_.end(),
                         [id](const auto& p) { return p.first == id; });
  if (it == callbacks_.end()) {
    return nullptr;
  }
  Callback fn = std::move(it->second);
  callbacks_.erase(it);
  return fn;
}

bool LegacyEventQueue::Cancel(EventId id) {
  Callback fn = TakeCallback(id);
  if (!fn) {
    return false;
  }
  cancelled_.push_back(id);
  return true;
}

bool LegacyEventQueue::RunOneDue(SimTime t) {
  while (!heap_.empty()) {
    const Event top = heap_.top();
    if (top.at > t) {
      return false;
    }
    heap_.pop();
    auto cancelled_it = std::find(cancelled_.begin(), cancelled_.end(), top.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;  // Skip cancelled event; keep looking.
    }
    Callback fn = TakeCallback(top.id);
    assert(fn && "event in heap without callback");
    clock_.AdvanceTo(std::max(clock_.now(), top.at));
    fn();
    return true;
  }
  return false;
}

bool LegacyEventQueue::PopDue(SimTime t, SimTime* at, EventId* id) {
  while (!heap_.empty()) {
    const Event top = heap_.top();
    if (top.at > t) {
      return false;
    }
    heap_.pop();
    auto cancelled_it = std::find(cancelled_.begin(), cancelled_.end(), top.id);
    if (cancelled_it != cancelled_.end()) {
      cancelled_.erase(cancelled_it);
      continue;
    }
    Callback fn = TakeCallback(top.id);
    assert(fn && "event in heap without callback");
    (void)fn;  // Consumed, not run: the caller fires the real callback.
    *at = top.at;
    *id = top.id;
    return true;
  }
  return false;
}

void LegacyEventQueue::RunUntil(SimTime t) {
  while (RunOneDue(t)) {
  }
  if (t > clock_.now()) {
    clock_.AdvanceTo(t);
  }
}

void LegacyEventQueue::RunAll() {
  while (RunOneDue(std::numeric_limits<SimTime>::max())) {
  }
}

}  // namespace ssmc
