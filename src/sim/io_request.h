// Explicit I/O requests — the unit of work flowing through the storage
// pipeline (paper Section 3.3).
//
// The paper's storage manager hides slow flash programs and erases by
// overlapping them with reads. The simulator used to model that implicitly:
// every device op charged latency against a per-bank `busy_until` timestamp
// and a `bool blocking` flag was threaded through FlashDevice, FlashStore,
// the WriteBuffer flush path, and the machine daemons. This header makes the
// request explicit: each device operation is an IoRequest with an op kind,
// an address range, a priority class, and issue/start/complete timestamps,
// scheduled onto a bank (channel) by an IoScheduler (io_scheduler.h).
//
// Priority classes order the contending streams the paper names:
//   foreground reads  — the CPU is waiting on the data;
//   flush writes      — the write buffer draining dirty blocks to flash;
//   cleaner traffic   — garbage collection, cold-data distillation, wear
//                       migration (pure background).
// Under the default FIFO policy the class is a label only (attribution
// accounting); under IoSchedPolicy::kPriority it reorders queued requests.

#ifndef SSMC_SRC_SIM_IO_REQUEST_H_
#define SSMC_SRC_SIM_IO_REQUEST_H_

#include <cstdint>
#include <functional>

#include "src/support/units.h"

namespace ssmc {

// Identifies the tenant (user, job, service class) on whose behalf an I/O
// is issued. Tenant 0 is the default single-tenant id: every request a
// machine issues without an explicit tenant carries it, so single-tenant
// simulations are bit-identical to the pre-tenancy simulator. Small dense
// ids are expected (per-tenant scheduler state is indexed by value).
using TenantId = uint16_t;
inline constexpr TenantId kDefaultTenant = 0;

// What the request does to the medium.
enum class IoOp : uint8_t {
  kRead = 0,
  kProgram,    // Flash program (erased bytes -> data).
  kErase,      // Flash sector erase.
  kDiskRead,   // Disk sector read (seek + rotation + transfer).
  kDiskWrite,  // Disk sector write.
};

// Scheduling class, most important first. Smaller value = served earlier
// when the scheduler reorders (IoSchedPolicy::kPriority).
enum class IoPriority : uint8_t {
  kForeground = 0,  // A caller is blocked on the result.
  kFlush = 1,       // Write-buffer / storage-manager flush traffic.
  kCleaner = 2,     // GC relocation, cold eviction, wear migration.
};
inline constexpr int kNumIoPriorities = 3;

const char* IoOpName(IoOp op);
const char* IoPriorityName(IoPriority priority);

// How a device schedules contending requests on one bank/channel.
//  * kFifo         — arrival order; dispatch math is exactly the historical
//                    charge-latency model (start = max(now, busy_until)),
//                    so every experiment is byte-identical to the
//                    pre-pipeline simulator. The default.
//  * kPriority     — a request may be dispatched ahead of queued (not yet
//                    started) lower-priority requests, pushing those back.
//                    This is the paper's "reads proceed during slow
//                    erase/writes" made literal: a foreground read never
//                    waits behind queued cleaner work, only behind the op
//                    already on the medium.
//  * kWeightedFair — start-time fair queuing (SFQ) over tenants: queued
//                    reservations are ordered by per-tenant virtual start
//                    tags so each backlogged tenant gets channel time in
//                    proportion to its weight. The op on the medium is
//                    never preempted. For a single tenant — and for any
//                    arrival pattern whose tag order equals arrival order,
//                    e.g. equal-weight round-robin submission — placement
//                    degenerates to FIFO bit-for-bit (see the differential
//                    oracle in io_scheduler_test).
//  * kTokenBucket  — per-tenant byte-rate admission control: a request
//                    from a rate-limited tenant starts no earlier than its
//                    bucket's eligible time. Queue order stays FIFO;
//                    unlimited tenants are unaffected.
enum class IoSchedPolicy : uint8_t {
  kFifo = 0,
  kPriority = 1,
  kWeightedFair = 2,
  kTokenBucket = 3,
};

const char* IoSchedPolicyName(IoSchedPolicy policy);

// How a caller issues an operation: its scheduling class, and whether the
// caller's clock advances to the operation's completion (a blocked CPU) or
// the bank absorbs the time in the background. Replaces the old
// `bool blocking` parameters.
struct IoIssue {
  IoPriority priority = IoPriority::kForeground;
  bool blocking = true;
  TenantId tenant = kDefaultTenant;
};

// `issue` re-attributed to `tenant` (priority/blocking unchanged).
inline constexpr IoIssue ForTenant(IoIssue issue, TenantId tenant) {
  issue.tenant = tenant;
  return issue;
}

// Convenience issue modes for the three streams.
inline constexpr IoIssue kForegroundIo{IoPriority::kForeground,
                                       /*blocking=*/true};
inline constexpr IoIssue kFlushIo{IoPriority::kFlush, /*blocking=*/false};
inline constexpr IoIssue kCleanerIo{IoPriority::kCleaner, /*blocking=*/false};

// One scheduled I/O operation. Built by the device layer; timestamps are
// filled in by the IoScheduler as the request moves issue -> start ->
// complete. queue wait = start - issue; service = complete - start.
struct IoRequest {
  IoOp op = IoOp::kRead;
  uint64_t addr = 0;   // First byte (flash) or sector index (disk).
  uint64_t bytes = 0;  // Transfer size; 0 for erases.
  IoPriority priority = IoPriority::kForeground;
  bool blocking = true;
  TenantId tenant = kDefaultTenant;  // Who the work is billed to.

  SimTime issue_time = 0;     // When the caller submitted the request.
  SimTime start_time = 0;     // When the medium began serving it.
  SimTime complete_time = 0;  // When the medium finished.

  // Invoked once with the final timestamps when the request retires (its
  // completion time has passed). Fired from IoScheduler::Poll() or from a
  // later Submit on the same channel — the pipeline is pumped by traffic,
  // not by a hidden daemon.
  std::function<void(const IoRequest&)> on_complete;

  Duration queue_wait() const { return start_time - issue_time; }
  Duration service() const { return complete_time - start_time; }
};

}  // namespace ssmc

#endif  // SSMC_SRC_SIM_IO_REQUEST_H_
