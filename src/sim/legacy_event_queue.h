// The pre-calendar event queue: a std::priority_queue over (time, seq) with
// std::function callbacks keyed by event id. Superseded as the simulation
// driver by the calendar implementation in event_queue.h, but kept — with its
// ordering semantics untouched — for two jobs:
//
//  * differential oracle: in validate mode (see EventQueue) every
//    schedule/cancel is mirrored here and PopDue() is consulted before each
//    retirement, so any divergence in run order between the two
//    implementations aborts the simulation at the first mismatched event;
//  * property tests: the determinism suite in event_queue_test.cc replays
//    randomized schedule/cancel interleavings against both queues and
//    requires bit-equal run order.
//
// Do not "fix" or optimise this class; its value is being the old behavior.

#ifndef SSMC_SRC_SIM_LEGACY_EVENT_QUEUE_H_
#define SSMC_SRC_SIM_LEGACY_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/clock.h"
#include "src/support/units.h"

namespace ssmc {

class LegacyEventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  explicit LegacyEventQueue(SimClock& clock) : clock_(clock) {}

  EventId ScheduleAt(SimTime at, Callback fn);
  EventId ScheduleAfter(Duration delay, Callback fn) {
    return ScheduleAt(clock_.now() + delay, std::move(fn));
  }

  bool Cancel(EventId id);

  void RunUntil(SimTime t);
  void RunAll();

  // Oracle interface: pops the next non-cancelled event due at or before `t`
  // and reports its (time, id) WITHOUT running its callback or touching the
  // clock. Returns false when nothing more is due. The popped event is
  // consumed, exactly as a run would consume it.
  bool PopDue(SimTime t, SimTime* at, EventId* id);

  size_t pending() const { return heap_.size() - cancelled_.size(); }
  bool empty() const { return pending() == 0; }

  SimClock& clock() { return clock_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    EventId id;
    // Ordering for a min-heap via std::greater.
    bool operator>(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  // Pops and runs the top event if it is due at or before `t`. Returns false
  // when nothing more is due.
  bool RunOneDue(SimTime t);

  SimClock& clock_;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  // Callbacks keyed by event id; erased on run or cancel. A cancelled id stays
  // in the heap until popped, tracked in `cancelled_` for size accounting.
  std::vector<std::pair<EventId, Callback>> callbacks_;
  std::vector<EventId> cancelled_;

  Callback TakeCallback(EventId id);
};

}  // namespace ssmc

#endif  // SSMC_SRC_SIM_LEGACY_EVENT_QUEUE_H_
