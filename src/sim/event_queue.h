// Discrete-event queue bound to a SimClock.
//
// Components schedule callbacks at absolute simulated times; the simulation
// driver pumps due events as it advances the clock. Events may schedule
// further events, including at the current time.
//
// Determinism guarantee: events scheduled for the same simulated time fire
// in scheduling order (stable by sequence number), regardless of how the
// underlying heap rebalances and regardless of how many same-time events are
// interleaved with cancellations. Simulation reproducibility depends on
// this — the I/O request pipeline (io_scheduler.h) breaks same-time
// dispatch ties the same way, and the flush/checkpoint daemons rely on it
// when both fire in the same tick. Guarded by the regression tests in
// event_queue_test.cc; do not weaken it.

#ifndef SSMC_SRC_SIM_EVENT_QUEUE_H_
#define SSMC_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/sim/clock.h"
#include "src/support/units.h"

namespace ssmc {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  explicit EventQueue(SimClock& clock) : clock_(clock) {}

  // Schedules `fn` to run when the clock reaches `at` (>= now). Returns an id
  // that can be passed to Cancel().
  EventId ScheduleAt(SimTime at, Callback fn);

  // Schedules `fn` to run `delay` from now.
  EventId ScheduleAfter(Duration delay, Callback fn) {
    return ScheduleAt(clock_.now() + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(EventId id);

  // Runs all events due at or before `t`, advancing the clock to each event's
  // time, then advances the clock to exactly `t`.
  void RunUntil(SimTime t);

  // Runs every pending event (advancing the clock past each). Use with care:
  // self-rescheduling events make this non-terminating; RunUntil is the
  // normal driver.
  void RunAll();

  size_t pending() const { return heap_.size() - cancelled_.size(); }
  bool empty() const { return pending() == 0; }

  SimClock& clock() { return clock_; }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    EventId id;
    // Ordering for a min-heap via std::greater.
    bool operator>(const Event& other) const {
      if (at != other.at) {
        return at > other.at;
      }
      return seq > other.seq;
    }
  };

  // Pops and runs the top event if it is due at or before `t`. Returns false
  // when nothing more is due.
  bool RunOneDue(SimTime t);

  SimClock& clock_;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  // Callbacks keyed by event id; erased on run or cancel. A cancelled id stays
  // in the heap until popped, tracked in `cancelled_` for size accounting.
  std::vector<std::pair<EventId, Callback>> callbacks_;
  std::vector<EventId> cancelled_;

  Callback TakeCallback(EventId id);
};

}  // namespace ssmc

#endif  // SSMC_SRC_SIM_EVENT_QUEUE_H_
