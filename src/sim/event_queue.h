// Discrete-event queue bound to a SimClock.
//
// Components schedule callbacks at absolute simulated times; the simulation
// driver pumps due events as it advances the clock. Events may schedule
// further events, including at the current time.
//
// Determinism guarantee: events scheduled for the same simulated time fire
// in scheduling order (stable by sequence number), regardless of how the
// underlying structure rebalances and regardless of how many same-time
// events are interleaved with cancellations. Simulation reproducibility
// depends on this — the I/O request pipeline (io_scheduler.h) breaks
// same-time dispatch ties the same way, and the flush/checkpoint daemons
// rely on it when both fire in the same tick. Guarded by the regression and
// property tests in event_queue_test.cc; do not weaken it.
//
// Implementation: a calendar of timestamp buckets. Each distinct pending
// timestamp owns one bucket holding a FIFO chain of event slots, so the
// FIFO-within-timestamp guarantee is structural (append order) rather than
// bought with per-event sequence numbers and heap tie-breaks. Retirement
// pops the earliest bucket once and drains its whole chain — one heap
// operation per distinct timestamp instead of one per event. Slots live in
// a pooled vector threaded with an intrusive free list (the same `next`
// field serves as chain link and free-list link), so steady-state
// schedule/run cycles perform no heap allocation. Cancellation is lazy: the
// slot is disarmed in O(1) and reclaimed when its bucket drains, or by
// compaction once disarmed slots outnumber armed ones (see Compact()), so
// cancel-heavy workloads stay bounded in memory.
//
// Validate mode (constructor flag, or SSMC_VALIDATE_EVENTS=1 in the
// environment) mirrors every schedule/cancel into the retired
// priority-queue implementation (legacy_event_queue.h) and checks each
// retirement against it, aborting on the first divergence in run order —
// the same differential-oracle pattern the FTL uses for victim selection.

#ifndef SSMC_SRC_SIM_EVENT_QUEUE_H_
#define SSMC_SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/legacy_event_queue.h"
#include "src/support/units.h"

namespace ssmc {

class EventQueue {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  // `validate_with_legacy` (or SSMC_VALIDATE_EVENTS=1) enables the lockstep
  // legacy oracle; it costs an allocation per event and is meant for tests
  // and one-off whole-simulation audits, not production runs.
  explicit EventQueue(SimClock& clock, bool validate_with_legacy = false);
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `fn` to run when the clock reaches `at` (>= now). Returns an id
  // that can be passed to Cancel().
  EventId ScheduleAt(SimTime at, Callback fn);

  // Schedules `fn` to run `delay` from now.
  EventId ScheduleAfter(Duration delay, Callback fn) {
    return ScheduleAt(clock_.now() + delay, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  // O(1): the slot is disarmed (its callback destroyed immediately, releasing
  // captures) and reclaimed lazily.
  bool Cancel(EventId id);

  // Runs all events due at or before `t`, advancing the clock to each event's
  // time, then advances the clock to exactly `t`.
  void RunUntil(SimTime t);

  // Runs every pending event (advancing the clock past each). Use with care:
  // self-rescheduling events make this non-terminating; RunUntil is the
  // normal driver.
  void RunAll();

  // Live (armed, not-yet-run) events. Cancelled events never count, no
  // matter how long their slots linger before reclamation.
  size_t pending() const { return pending_; }
  bool empty() const { return pending_ == 0; }

  // Slots currently held by the queue (armed + lazily-cancelled + free).
  // Exposed so tests can assert that cancel-heavy workloads stay bounded.
  size_t slot_capacity() const { return slots_.size(); }

  SimClock& clock() { return clock_; }

 private:
  struct Slot {
    SimTime at = 0;
    Callback fn;
    // Chain link while queued in a bucket; free-list link while pooled.
    int32_t next = -1;
    // Bumped on reclamation so stale EventIds can never cancel a reused slot.
    uint32_t gen = 1;
    bool armed = false;
  };

  struct Bucket {
    SimTime at = 0;
    int32_t head = -1;
    int32_t tail = -1;
    // Free-list link while pooled.
    int32_t next_free = -1;
  };

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(gen) << 32) | slot;
  }

  int32_t AllocSlot();
  void FreeSlot(int32_t s);
  int32_t AllocBucket(SimTime at);
  void FreeBucket(int32_t b);

  // Timestamp -> bucket index, open-addressed with linear probing.
  int32_t FindBucket(SimTime at) const;
  int32_t FindOrCreateBucket(SimTime at);
  void TableInsert(SimTime at, int32_t bucket);
  void TableErase(SimTime at);
  void Rehash(size_t new_slots);

  // Min-heap of bucket indices ordered by bucket time (times are unique, so
  // no tie-break exists to get wrong).
  void HeapPush(int32_t b);
  int32_t HeapPopMin();

  // Drains bucket `b` (already popped from the heap): advances the clock to
  // its time and fires its chain in FIFO order, including events appended to
  // the chain by the callbacks themselves.
  void DrainBucket(int32_t b);

  // Reclaims lazily-cancelled slots once they outnumber armed events (i.e.
  // more than half of all chained slots are dead), unlinking them from idle
  // bucket chains and dropping emptied buckets.
  void CompactIfNeeded();
  void Compact();

  // Legacy-oracle mirroring (validate mode only).
  void OracleSchedule(SimTime at, EventId id);
  void OracleCancel(EventId id);
  void OracleCheckFire(SimTime at, EventId id);
  void OracleCheckDrained(SimTime t);

  SimClock& clock_;
  std::vector<Slot> slots_;
  int32_t free_slot_ = -1;
  std::vector<Bucket> buckets_;
  int32_t free_bucket_ = -1;
  std::vector<int32_t> heap_;
  std::vector<int32_t> table_;  // kEmptySlot / kTombstone / bucket index
  size_t table_live_ = 0;
  size_t table_used_ = 0;  // live + tombstones
  size_t pending_ = 0;     // armed events
  size_t cancelled_ = 0;   // disarmed slots still chained in buckets
  int32_t running_bucket_ = -1;

  struct OracleState;
  std::unique_ptr<OracleState> oracle_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_SIM_EVENT_QUEUE_H_
