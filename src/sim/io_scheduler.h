// Per-channel I/O request scheduler — the dispatch stage of the request
// pipeline (io_request.h).
//
// A device owns one IoScheduler with one channel per independently-busy
// resource (a flash bank, a disk arm). Submitting a request reserves channel
// time for it and returns its dispatch (start/complete times); the device
// then advances the caller's clock for blocking requests and leaves the
// channel to absorb background ones.
//
// Policies:
//  * kFifo (default): a request starts at max(now, channel busy-until) —
//    bit-for-bit the historical per-bank `busy_until` charge-latency model,
//    so default-policy simulations are byte-identical to the pre-pipeline
//    simulator (enforced by the differential oracle in io_scheduler_test).
//  * kPriority: a request may be placed ahead of queued reservations of a
//    strictly lower class that have not started yet, pushing them later.
//    The op already on the medium is never preempted. Blocking requests'
//    dispatch is always final (the caller advances the clock past their
//    completion); queued background reservations may shift later, and the
//    shift is reported to the wait observer so attribution counters track
//    true waits.
//  * kWeightedFair: start-time fair queuing (SFQ, Goyal et al.) over
//    tenants. Each request gets a virtual start tag
//        vstart = max(channel.V, tenant.vfinish)
//    and advances its tenant's finish tag by service/weight; queued (not
//    yet started) reservations are ordered by (vstart, submission seq),
//    and the channel's virtual clock V tracks the start tag of the most
//    recently started reservation (jumping to the max assigned finish tag
//    when the channel idles). Backlogged tenants therefore share channel
//    time in proportion to their weights, while a lone tenant's monotone
//    tags reproduce FIFO placement exactly.
//  * kTokenBucket: per-tenant (rate bytes/s, burst bytes) buckets gate
//    admission. Queue order is FIFO, but a request's start is clamped to
//    its bucket's deterministic eligible time, so a tenant's admitted
//    bytes never exceed burst + rate * elapsed. Not work-conserving: a
//    gated request leaves its channel idle rather than letting later work
//    overtake it.
//
// Request-path allocation: a FIFO request with no completion callback and no
// retire hook attached is fully described by its completion time — under
// FIFO it can never be reordered and nobody needs its IoRequest back — so it
// is never materialized as a reservation at all; the channel just advances
// its busy-until and records the completion time in a small ring (keeping
// pending() exact). Only requests that must be revisited (a callback to
// fire, a tracing hook, or priority placement) become Reservation objects,
// and those live on an intrusive per-channel list allocated from a
// fixed-chunk RequestArena — steady-state submission touches the heap for
// neither kind.
//
// Determinism: ties (same channel, same priority) dispatch in submission
// order, mirroring EventQueue's same-timestamp guarantee. The scheduler
// never advances the clock itself.

#ifndef SSMC_SRC_SIM_IO_SCHEDULER_H_
#define SSMC_SRC_SIM_IO_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/io_request.h"
#include "src/support/arena.h"
#include "src/support/units.h"

namespace ssmc {

class IoScheduler {
 public:
  // Where and when a submitted request was placed on its channel.
  struct Dispatch {
    SimTime start = 0;
    SimTime complete = 0;
    Duration wait = 0;     // start - submit time.
    Duration service = 0;  // complete - start.
  };

  // Service time evaluated at dispatch: devices whose cost depends on the
  // start time (disk rotation position) compute it here. Evaluated once per
  // request, at submission, with the request's dispatch start time.
  using ServiceFn = std::function<Duration(SimTime start)>;

  // Called when a queued reservation is pushed `delta` ns later by a
  // higher-priority submission (kPriority only; delta > 0). Lets the device
  // keep per-class wait counters exact without draining the pipeline.
  using ShiftObserver = std::function<void(const IoRequest&, Duration delta)>;

  IoScheduler(SimClock& clock, int channels,
              IoSchedPolicy policy = IoSchedPolicy::kFifo);
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  IoSchedPolicy policy() const { return policy_; }
  // Policy changes require an idle pipeline (no pending reservations);
  // switching mid-flight would reinterpret already-placed reservations.
  void set_policy(IoSchedPolicy policy);

  void set_shift_observer(ShiftObserver observer) {
    shift_observer_ = std::move(observer);
  }

  // kWeightedFair: the tenant's relative share of channel time while
  // backlogged. Defaults to 1; 0 is clamped to 1. Applies to tags assigned
  // after the call.
  void set_tenant_weight(TenantId tenant, uint32_t weight);
  uint32_t tenant_weight(TenantId tenant) const;

  // kTokenBucket: cap the tenant's admitted bytes per second, with up to
  // `burst_bytes` of credit accumulating while idle. rate 0 (the default)
  // means unlimited. Erases and other zero-byte ops charge one byte.
  void set_tenant_rate(TenantId tenant, uint64_t bytes_per_s,
                       uint64_t burst_bytes);

  // Called as each reservation retires, with its channel and the request
  // carrying FINAL timestamps (queued reservations may shift later under
  // kPriority until they start, so retirement is the only point where the
  // full queue-wait/service split is settled). Fires before the request's
  // own on_complete. Tracing hook: must not submit or advance the clock.
  using RetireHook = std::function<void(int channel, const IoRequest&)>;
  void set_retire_hook(RetireHook hook) { retire_hook_ = std::move(hook); }

  // Reserves channel time for `req` (service `service_ns`) and returns its
  // dispatch. Retires every reservation on the channel whose completion time
  // has passed (firing on_complete callbacks) as a side effect.
  Dispatch Submit(int channel, IoRequest req, Duration service_ns);

  // As above with the service time computed at dispatch. The service
  // function sees the final start time under kFifo; under kPriority it sees
  // the start as of submission (later shifts do not re-evaluate it) — the
  // disk, the only position-dependent device, schedules FIFO.
  Dispatch Submit(int channel, IoRequest req, const ServiceFn& service);

  // Retires completed reservations on every channel (fires on_complete).
  void Poll();

  // Time at which the channel's last reservation completes; monotone, like
  // the per-bank busy_until it replaces (it does not reset when idle).
  SimTime ChannelBusyUntil(int channel) const;

  // Requests not yet retired on `channel` (in service + queued).
  size_t PendingOn(int channel) const;
  size_t pending() const;

  int num_channels() const { return static_cast<int>(channels_.size()); }

  // The reservation pool (exposed for allocation-behavior tests).
  const RequestArena& arena() const { return arena_; }

 private:
  struct Reservation {
    IoRequest req;        // Timestamps kept current as the schedule shifts.
    Duration service = 0;
    uint64_t seq = 0;     // Global submission order; breaks priority ties.
    Reservation* next = nullptr;
    uint64_t vstart = 0;  // kWeightedFair virtual start tag; else 0.
  };

  // Growable power-of-two ring of completion times for callback-free FIFO
  // requests. Steady state pushes and pops in place; it only allocates while
  // growing to the channel's high-water depth.
  class TimeRing {
   public:
    void push(SimTime t);
    SimTime front() const { return buf_[head_ & mask_]; }
    void pop() { ++head_; }
    bool empty() const { return head_ == tail_; }
    size_t size() const { return tail_ - head_; }

   private:
    std::vector<SimTime> buf_;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t tail_ = 0;
  };

  struct Channel {
    // Reservations ordered by start time; the head may be in service
    // (start <= now < complete). Starts are contiguous: each reservation
    // starts exactly when its predecessor completes (or at its own issue
    // time on an idle channel).
    Reservation* head = nullptr;
    Reservation* tail = nullptr;
    size_t queued = 0;
    // Completion times of in-flight callback-free FIFO requests.
    TimeRing light;
    // Completion time of the latest-completing request ever placed on the
    // channel; never decreases.
    SimTime busy_until = 0;
    // kWeightedFair virtual clock: the start tag of the most recently
    // started reservation, and the largest finish tag ever assigned (the
    // clock jumps there when the channel idles).
    uint64_t vtime = 0;
    uint64_t max_vfinish = 0;
    // Per-tenant virtual finish tags, indexed by tenant id (grown on
    // demand; tenants are small dense ids).
    std::vector<uint64_t> tenant_vfinish;
  };

  // Per-tenant token bucket. The level is held in byte-nanoseconds
  // (1 byte == kSecond units) so refill math is exact integer arithmetic.
  struct TokenBucket {
    uint64_t rate = 0;  // Bytes per second; 0 = unlimited.
    uint64_t cap = 0;   // burst_bytes scaled.
    uint64_t level = 0;
    SimTime refilled_to = 0;
  };

  // Pops front reservations with complete_time <= now, firing callbacks.
  void Retire(int channel_index, Channel& channel);
  // Recomputes start/complete for the reservations after `from`, notifying
  // shifts.
  void Reflow(Channel& channel, Reservation* from);

  Dispatch Place(int channel, IoRequest req, Duration service_now,
                 const ServiceFn* service_fn);

  // Charges `bytes` against the tenant's bucket and returns the earliest
  // admission time (>= now). Unlimited tenants are admitted at `now`.
  SimTime AdmitAt(TenantId tenant, uint64_t bytes, SimTime now);

  uint64_t& TenantVfinish(Channel& channel, TenantId tenant);

  SimClock& clock_;
  IoSchedPolicy policy_;
  RequestArena arena_;
  std::vector<Channel> channels_;
  ShiftObserver shift_observer_;
  RetireHook retire_hook_;
  uint64_t next_seq_ = 0;
  std::vector<uint32_t> weights_;     // Indexed by tenant; 0 slots mean 1.
  std::vector<TokenBucket> buckets_;  // Indexed by tenant.
};

}  // namespace ssmc

#endif  // SSMC_SRC_SIM_IO_SCHEDULER_H_
