// Per-channel I/O request scheduler — the dispatch stage of the request
// pipeline (io_request.h).
//
// A device owns one IoScheduler with one channel per independently-busy
// resource (a flash bank, a disk arm). Submitting a request reserves channel
// time for it and returns its dispatch (start/complete times); the device
// then advances the caller's clock for blocking requests and leaves the
// channel to absorb background ones.
//
// Policies:
//  * kFifo (default): a request starts at max(now, channel busy-until) —
//    bit-for-bit the historical per-bank `busy_until` charge-latency model,
//    so default-policy simulations are byte-identical to the pre-pipeline
//    simulator (enforced by the differential oracle in io_scheduler_test).
//  * kPriority: a request may be placed ahead of queued reservations of a
//    strictly lower class that have not started yet, pushing them later.
//    The op already on the medium is never preempted. Blocking requests'
//    dispatch is always final (the caller advances the clock past their
//    completion); queued background reservations may shift later, and the
//    shift is reported to the wait observer so attribution counters track
//    true waits.
//
// Determinism: ties (same channel, same priority) dispatch in submission
// order, mirroring EventQueue's same-timestamp guarantee. The scheduler
// never advances the clock itself.

#ifndef SSMC_SRC_SIM_IO_SCHEDULER_H_
#define SSMC_SRC_SIM_IO_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/io_request.h"
#include "src/support/units.h"

namespace ssmc {

class IoScheduler {
 public:
  // Where and when a submitted request was placed on its channel.
  struct Dispatch {
    SimTime start = 0;
    SimTime complete = 0;
    Duration wait = 0;     // start - submit time.
    Duration service = 0;  // complete - start.
  };

  // Service time evaluated at dispatch: devices whose cost depends on the
  // start time (disk rotation position) compute it here. Evaluated once per
  // request, at submission, with the request's dispatch start time.
  using ServiceFn = std::function<Duration(SimTime start)>;

  // Called when a queued reservation is pushed `delta` ns later by a
  // higher-priority submission (kPriority only; delta > 0). Lets the device
  // keep per-class wait counters exact without draining the pipeline.
  using ShiftObserver = std::function<void(const IoRequest&, Duration delta)>;

  IoScheduler(SimClock& clock, int channels,
              IoSchedPolicy policy = IoSchedPolicy::kFifo);

  IoSchedPolicy policy() const { return policy_; }
  // Policy changes require an idle pipeline (no pending reservations);
  // switching mid-flight would reinterpret already-placed reservations.
  void set_policy(IoSchedPolicy policy);

  void set_shift_observer(ShiftObserver observer) {
    shift_observer_ = std::move(observer);
  }

  // Called as each reservation retires, with its channel and the request
  // carrying FINAL timestamps (queued reservations may shift later under
  // kPriority until they start, so retirement is the only point where the
  // full queue-wait/service split is settled). Fires before the request's
  // own on_complete. Tracing hook: must not submit or advance the clock.
  using RetireHook = std::function<void(int channel, const IoRequest&)>;
  void set_retire_hook(RetireHook hook) { retire_hook_ = std::move(hook); }

  // Reserves channel time for `req` (service `service_ns`) and returns its
  // dispatch. Retires every reservation on the channel whose completion time
  // has passed (firing on_complete callbacks) as a side effect.
  Dispatch Submit(int channel, IoRequest req, Duration service_ns);

  // As above with the service time computed at dispatch. The service
  // function sees the final start time under kFifo; under kPriority it sees
  // the start as of submission (later shifts do not re-evaluate it) — the
  // disk, the only position-dependent device, schedules FIFO.
  Dispatch Submit(int channel, IoRequest req, const ServiceFn& service);

  // Retires completed reservations on every channel (fires on_complete).
  void Poll();

  // Time at which the channel's last reservation completes; monotone, like
  // the per-bank busy_until it replaces (it does not reset when idle).
  SimTime ChannelBusyUntil(int channel) const;

  // Reservations not yet retired on `channel` (in service + queued).
  size_t PendingOn(int channel) const;
  size_t pending() const;

  int num_channels() const { return static_cast<int>(channels_.size()); }

 private:
  struct Reservation {
    IoRequest req;        // Timestamps kept current as the schedule shifts.
    Duration service = 0;
    uint64_t seq = 0;     // Global submission order; breaks priority ties.
  };

  struct Channel {
    // Reservations ordered by start time; front may be in service
    // (start <= now < complete). Starts are contiguous: each reservation
    // starts exactly when its predecessor completes (or at its own issue
    // time on an idle channel).
    std::deque<Reservation> timeline;
    // busy_until of the last retired reservation (timeline empty).
    SimTime last_complete = 0;
  };

  // Pops front reservations with complete_time <= now, firing callbacks.
  void Retire(int channel_index, Channel& channel);
  // Recomputes start/complete for timeline[from..], notifying shifts.
  void Reflow(Channel& channel, size_t from);

  Dispatch Place(int channel, IoRequest req, Duration service_now,
                 const ServiceFn* service_fn);

  SimClock& clock_;
  IoSchedPolicy policy_;
  std::vector<Channel> channels_;
  ShiftObserver shift_observer_;
  RetireHook retire_hook_;
  uint64_t next_seq_ = 0;
};

}  // namespace ssmc

#endif  // SSMC_SRC_SIM_IO_SCHEDULER_H_
