// Per-channel I/O request scheduler — the dispatch stage of the request
// pipeline (io_request.h).
//
// A device owns one IoScheduler with one channel per independently-busy
// resource (a flash bank, a disk arm). Submitting a request reserves channel
// time for it and returns its dispatch (start/complete times); the device
// then advances the caller's clock for blocking requests and leaves the
// channel to absorb background ones.
//
// Policies:
//  * kFifo (default): a request starts at max(now, channel busy-until) —
//    bit-for-bit the historical per-bank `busy_until` charge-latency model,
//    so default-policy simulations are byte-identical to the pre-pipeline
//    simulator (enforced by the differential oracle in io_scheduler_test).
//  * kPriority: a request may be placed ahead of queued reservations of a
//    strictly lower class that have not started yet, pushing them later.
//    The op already on the medium is never preempted. Blocking requests'
//    dispatch is always final (the caller advances the clock past their
//    completion); queued background reservations may shift later, and the
//    shift is reported to the wait observer so attribution counters track
//    true waits.
//
// Request-path allocation: a FIFO request with no completion callback and no
// retire hook attached is fully described by its completion time — under
// FIFO it can never be reordered and nobody needs its IoRequest back — so it
// is never materialized as a reservation at all; the channel just advances
// its busy-until and records the completion time in a small ring (keeping
// pending() exact). Only requests that must be revisited (a callback to
// fire, a tracing hook, or priority placement) become Reservation objects,
// and those live on an intrusive per-channel list allocated from a
// fixed-chunk RequestArena — steady-state submission touches the heap for
// neither kind.
//
// Determinism: ties (same channel, same priority) dispatch in submission
// order, mirroring EventQueue's same-timestamp guarantee. The scheduler
// never advances the clock itself.

#ifndef SSMC_SRC_SIM_IO_SCHEDULER_H_
#define SSMC_SRC_SIM_IO_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/clock.h"
#include "src/sim/io_request.h"
#include "src/support/arena.h"
#include "src/support/units.h"

namespace ssmc {

class IoScheduler {
 public:
  // Where and when a submitted request was placed on its channel.
  struct Dispatch {
    SimTime start = 0;
    SimTime complete = 0;
    Duration wait = 0;     // start - submit time.
    Duration service = 0;  // complete - start.
  };

  // Service time evaluated at dispatch: devices whose cost depends on the
  // start time (disk rotation position) compute it here. Evaluated once per
  // request, at submission, with the request's dispatch start time.
  using ServiceFn = std::function<Duration(SimTime start)>;

  // Called when a queued reservation is pushed `delta` ns later by a
  // higher-priority submission (kPriority only; delta > 0). Lets the device
  // keep per-class wait counters exact without draining the pipeline.
  using ShiftObserver = std::function<void(const IoRequest&, Duration delta)>;

  IoScheduler(SimClock& clock, int channels,
              IoSchedPolicy policy = IoSchedPolicy::kFifo);
  ~IoScheduler();

  IoScheduler(const IoScheduler&) = delete;
  IoScheduler& operator=(const IoScheduler&) = delete;

  IoSchedPolicy policy() const { return policy_; }
  // Policy changes require an idle pipeline (no pending reservations);
  // switching mid-flight would reinterpret already-placed reservations.
  void set_policy(IoSchedPolicy policy);

  void set_shift_observer(ShiftObserver observer) {
    shift_observer_ = std::move(observer);
  }

  // Called as each reservation retires, with its channel and the request
  // carrying FINAL timestamps (queued reservations may shift later under
  // kPriority until they start, so retirement is the only point where the
  // full queue-wait/service split is settled). Fires before the request's
  // own on_complete. Tracing hook: must not submit or advance the clock.
  using RetireHook = std::function<void(int channel, const IoRequest&)>;
  void set_retire_hook(RetireHook hook) { retire_hook_ = std::move(hook); }

  // Reserves channel time for `req` (service `service_ns`) and returns its
  // dispatch. Retires every reservation on the channel whose completion time
  // has passed (firing on_complete callbacks) as a side effect.
  Dispatch Submit(int channel, IoRequest req, Duration service_ns);

  // As above with the service time computed at dispatch. The service
  // function sees the final start time under kFifo; under kPriority it sees
  // the start as of submission (later shifts do not re-evaluate it) — the
  // disk, the only position-dependent device, schedules FIFO.
  Dispatch Submit(int channel, IoRequest req, const ServiceFn& service);

  // Retires completed reservations on every channel (fires on_complete).
  void Poll();

  // Time at which the channel's last reservation completes; monotone, like
  // the per-bank busy_until it replaces (it does not reset when idle).
  SimTime ChannelBusyUntil(int channel) const;

  // Requests not yet retired on `channel` (in service + queued).
  size_t PendingOn(int channel) const;
  size_t pending() const;

  int num_channels() const { return static_cast<int>(channels_.size()); }

  // The reservation pool (exposed for allocation-behavior tests).
  const RequestArena& arena() const { return arena_; }

 private:
  struct Reservation {
    IoRequest req;        // Timestamps kept current as the schedule shifts.
    Duration service = 0;
    uint64_t seq = 0;     // Global submission order; breaks priority ties.
    Reservation* next = nullptr;
  };

  // Growable power-of-two ring of completion times for callback-free FIFO
  // requests. Steady state pushes and pops in place; it only allocates while
  // growing to the channel's high-water depth.
  class TimeRing {
   public:
    void push(SimTime t);
    SimTime front() const { return buf_[head_ & mask_]; }
    void pop() { ++head_; }
    bool empty() const { return head_ == tail_; }
    size_t size() const { return tail_ - head_; }

   private:
    std::vector<SimTime> buf_;
    size_t mask_ = 0;
    size_t head_ = 0;
    size_t tail_ = 0;
  };

  struct Channel {
    // Reservations ordered by start time; the head may be in service
    // (start <= now < complete). Starts are contiguous: each reservation
    // starts exactly when its predecessor completes (or at its own issue
    // time on an idle channel).
    Reservation* head = nullptr;
    Reservation* tail = nullptr;
    size_t queued = 0;
    // Completion times of in-flight callback-free FIFO requests.
    TimeRing light;
    // Completion time of the latest-completing request ever placed on the
    // channel; never decreases.
    SimTime busy_until = 0;
  };

  // Pops front reservations with complete_time <= now, firing callbacks.
  void Retire(int channel_index, Channel& channel);
  // Recomputes start/complete for the reservations after `from`, notifying
  // shifts.
  void Reflow(Channel& channel, Reservation* from);

  Dispatch Place(int channel, IoRequest req, Duration service_now,
                 const ServiceFn* service_fn);

  SimClock& clock_;
  IoSchedPolicy policy_;
  RequestArena arena_;
  std::vector<Channel> channels_;
  ShiftObserver shift_observer_;
  RetireHook retire_hook_;
  uint64_t next_seq_ = 0;
};

}  // namespace ssmc

#endif  // SSMC_SRC_SIM_IO_SCHEDULER_H_
