#include "src/sim/io_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace ssmc {

const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kRead:
      return "read";
    case IoOp::kProgram:
      return "program";
    case IoOp::kErase:
      return "erase";
    case IoOp::kDiskRead:
      return "disk-read";
    case IoOp::kDiskWrite:
      return "disk-write";
  }
  return "?";
}

const char* IoPriorityName(IoPriority priority) {
  switch (priority) {
    case IoPriority::kForeground:
      return "foreground";
    case IoPriority::kFlush:
      return "flush";
    case IoPriority::kCleaner:
      return "cleaner";
  }
  return "?";
}

IoScheduler::IoScheduler(SimClock& clock, int channels, IoSchedPolicy policy)
    : clock_(clock), policy_(policy) {
  assert(channels >= 1);
  channels_.resize(static_cast<size_t>(channels));
}

void IoScheduler::set_policy(IoSchedPolicy policy) {
  assert(pending() == 0 && "policy change requires an idle pipeline");
  policy_ = policy;
}

void IoScheduler::Retire(int channel_index, Channel& channel) {
  const SimTime now = clock_.now();
  while (!channel.timeline.empty() &&
         channel.timeline.front().req.complete_time <= now) {
    Reservation done = std::move(channel.timeline.front());
    channel.timeline.pop_front();
    channel.last_complete = done.req.complete_time;
    if (retire_hook_) {
      retire_hook_(channel_index, done.req);
    }
    if (done.req.on_complete) {
      done.req.on_complete(done.req);
    }
  }
}

void IoScheduler::Reflow(Channel& channel, size_t from) {
  for (size_t i = from; i < channel.timeline.size(); ++i) {
    Reservation& r = channel.timeline[i];
    const SimTime new_start = channel.timeline[i - 1].req.complete_time;
    const Duration delta = new_start - r.req.start_time;
    if (delta == 0) {
      break;  // Starts are contiguous; nothing further moves.
    }
    assert(delta > 0 && "reservations only ever shift later");
    r.req.start_time = new_start;
    r.req.complete_time = new_start + r.service;
    if (shift_observer_) {
      shift_observer_(r.req, delta);
    }
  }
}

IoScheduler::Dispatch IoScheduler::Place(int channel_index, IoRequest req,
                                         Duration service_now,
                                         const ServiceFn* service_fn) {
  assert(channel_index >= 0 && channel_index < num_channels());
  Channel& channel = channels_[static_cast<size_t>(channel_index)];
  const SimTime now = clock_.now();
  req.issue_time = now;
  Retire(channel_index, channel);

  // Insertion point. FIFO: the back. Priority: ahead of queued reservations
  // of a strictly lower class that have not started (the front may be in
  // service — start_time <= now — and is never preempted). Equal classes
  // keep submission order.
  size_t idx = channel.timeline.size();
  if (policy_ == IoSchedPolicy::kPriority) {
    size_t first_movable = 0;
    while (first_movable < channel.timeline.size() &&
           channel.timeline[first_movable].req.start_time <= now) {
      ++first_movable;
    }
    for (size_t i = first_movable; i < channel.timeline.size(); ++i) {
      if (channel.timeline[i].req.priority > req.priority) {
        idx = i;
        break;
      }
    }
  }

  // Start when the predecessor completes; an idle channel serves at once
  // (start = max(now, busy_until) of the historical charge-latency model —
  // every retired reservation completed at or before now).
  const SimTime start =
      idx == 0 ? now : channel.timeline[idx - 1].req.complete_time;
  const Duration service =
      service_fn != nullptr ? (*service_fn)(start) : service_now;
  assert(service >= 0);
  req.start_time = start;
  req.complete_time = start + service;

  Dispatch dispatch;
  dispatch.start = start;
  dispatch.complete = req.complete_time;
  dispatch.wait = start - now;
  dispatch.service = service;

  Reservation reservation{std::move(req), service, next_seq_++};
  channel.timeline.insert(
      channel.timeline.begin() + static_cast<ptrdiff_t>(idx),
      std::move(reservation));
  Reflow(channel, idx + 1);
  return dispatch;
}

IoScheduler::Dispatch IoScheduler::Submit(int channel, IoRequest req,
                                          Duration service_ns) {
  return Place(channel, std::move(req), service_ns, nullptr);
}

IoScheduler::Dispatch IoScheduler::Submit(int channel, IoRequest req,
                                          const ServiceFn& service) {
  return Place(channel, std::move(req), 0, &service);
}

void IoScheduler::Poll() {
  for (size_t i = 0; i < channels_.size(); ++i) {
    Retire(static_cast<int>(i), channels_[i]);
  }
}

SimTime IoScheduler::ChannelBusyUntil(int channel) const {
  const Channel& ch = channels_[static_cast<size_t>(channel)];
  return ch.timeline.empty() ? ch.last_complete
                             : ch.timeline.back().req.complete_time;
}

size_t IoScheduler::PendingOn(int channel) const {
  return channels_[static_cast<size_t>(channel)].timeline.size();
}

size_t IoScheduler::pending() const {
  size_t total = 0;
  for (const Channel& channel : channels_) {
    total += channel.timeline.size();
  }
  return total;
}

}  // namespace ssmc
