#include "src/sim/io_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace ssmc {

const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kRead:
      return "read";
    case IoOp::kProgram:
      return "program";
    case IoOp::kErase:
      return "erase";
    case IoOp::kDiskRead:
      return "disk-read";
    case IoOp::kDiskWrite:
      return "disk-write";
  }
  return "?";
}

const char* IoPriorityName(IoPriority priority) {
  switch (priority) {
    case IoPriority::kForeground:
      return "foreground";
    case IoPriority::kFlush:
      return "flush";
    case IoPriority::kCleaner:
      return "cleaner";
  }
  return "?";
}

const char* IoSchedPolicyName(IoSchedPolicy policy) {
  switch (policy) {
    case IoSchedPolicy::kFifo:
      return "fifo";
    case IoSchedPolicy::kPriority:
      return "priority";
    case IoSchedPolicy::kWeightedFair:
      return "wfq";
    case IoSchedPolicy::kTokenBucket:
      return "token";
  }
  return "?";
}

namespace {
// Virtual-time resolution: finish tags advance by service * kVtScale /
// weight, so integer division loses at most 1/kVtScale of a nanosecond of
// ordering resolution per request.
constexpr uint64_t kVtScale = 1024;
// One byte of token-bucket credit, in scaled units (see TokenBucket).
constexpr uint64_t kTokenPerByte = static_cast<uint64_t>(kSecond);
}  // namespace

void IoScheduler::TimeRing::push(SimTime t) {
  if (tail_ - head_ == buf_.size()) {
    const size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<SimTime> grown(cap);
    const size_t count = tail_ - head_;
    for (size_t i = 0; i < count; ++i) {
      grown[i] = buf_[(head_ + i) & mask_];
    }
    buf_ = std::move(grown);
    mask_ = cap - 1;
    head_ = 0;
    tail_ = count;
  }
  buf_[tail_ & mask_] = t;
  ++tail_;
}

IoScheduler::IoScheduler(SimClock& clock, int channels, IoSchedPolicy policy)
    : clock_(clock), policy_(policy), arena_(sizeof(Reservation)) {
  assert(channels >= 1);
  channels_.resize(static_cast<size_t>(channels));
}

IoScheduler::~IoScheduler() {
  // Destroy any still-queued reservations; the arena frees raw chunks only.
  for (Channel& channel : channels_) {
    Reservation* node = channel.head;
    while (node != nullptr) {
      Reservation* next = node->next;
      arena_.Delete(node);
      node = next;
    }
  }
}

void IoScheduler::set_policy(IoSchedPolicy policy) {
  assert(pending() == 0 && "policy change requires an idle pipeline");
  policy_ = policy;
}

void IoScheduler::set_tenant_weight(TenantId tenant, uint32_t weight) {
  if (weights_.size() <= tenant) {
    weights_.resize(static_cast<size_t>(tenant) + 1, 0);
  }
  weights_[tenant] = weight == 0 ? 1 : weight;
}

uint32_t IoScheduler::tenant_weight(TenantId tenant) const {
  if (tenant < weights_.size() && weights_[tenant] != 0) {
    return weights_[tenant];
  }
  return 1;
}

void IoScheduler::set_tenant_rate(TenantId tenant, uint64_t bytes_per_s,
                                  uint64_t burst_bytes) {
  if (buckets_.size() <= tenant) {
    buckets_.resize(static_cast<size_t>(tenant) + 1);
  }
  TokenBucket& bucket = buckets_[tenant];
  bucket.rate = bytes_per_s;
  // A zero-burst bucket could never admit anything; one op's worth of
  // credit is the useful minimum.
  bucket.cap = std::max<uint64_t>(burst_bytes, 1) * kTokenPerByte;
  bucket.level = bucket.cap;  // Starts full.
  bucket.refilled_to = clock_.now();
}

SimTime IoScheduler::AdmitAt(TenantId tenant, uint64_t bytes, SimTime now) {
  if (tenant >= buckets_.size() || buckets_[tenant].rate == 0) {
    return now;
  }
  TokenBucket& bucket = buckets_[tenant];
  // Refill to now. Elapsed * rate can overflow over long idle stretches, so
  // saturate once the bucket would fill anyway.
  if (now > bucket.refilled_to) {
    const uint64_t elapsed = static_cast<uint64_t>(now - bucket.refilled_to);
    const uint64_t headroom = bucket.cap - bucket.level;
    if (elapsed >= headroom / bucket.rate + 1) {
      bucket.level = bucket.cap;
    } else {
      bucket.level = std::min(bucket.cap, bucket.level + elapsed * bucket.rate);
    }
    bucket.refilled_to = now;
  }
  // After the refill step, refilled_to >= now; it sits in the future when an
  // earlier gated request already consumed accrual through that time. All
  // credit in the bucket is valid through refilled_to, so admission is at
  // refilled_to in both branches — never earlier, or a request could spend
  // tokens that do not exist yet (and the deficit wait below would re-count
  // the same refill interval).
  const uint64_t need = std::max<uint64_t>(bytes, 1) * kTokenPerByte;
  if (bucket.level >= need) {
    bucket.level -= need;
    return bucket.refilled_to;
  }
  // Not enough credit: eligible once the deficit has accrued past
  // refilled_to (the sub-nanosecond ceil remainder stays in the bucket).
  const uint64_t deficit = need - bucket.level;
  const uint64_t wait = (deficit + bucket.rate - 1) / bucket.rate;
  bucket.level = bucket.level + wait * bucket.rate - need;
  bucket.refilled_to += static_cast<SimTime>(wait);
  return bucket.refilled_to;
}

uint64_t& IoScheduler::TenantVfinish(Channel& channel, TenantId tenant) {
  if (channel.tenant_vfinish.size() <= tenant) {
    channel.tenant_vfinish.resize(static_cast<size_t>(tenant) + 1, 0);
  }
  return channel.tenant_vfinish[tenant];
}

void IoScheduler::Retire(int channel_index, Channel& channel) {
  const SimTime now = clock_.now();
  while (!channel.light.empty() && channel.light.front() <= now) {
    channel.light.pop();
  }
  while (channel.head != nullptr && channel.head->req.complete_time <= now) {
    Reservation* done = channel.head;
    channel.head = done->next;
    if (channel.head == nullptr) {
      channel.tail = nullptr;
    }
    channel.queued -= 1;
    // Every retired reservation was served; the virtual clock follows the
    // most recently started one (vstart is 0 outside kWeightedFair).
    channel.vtime = std::max(channel.vtime, done->vstart);
    if (retire_hook_) {
      retire_hook_(channel_index, done->req);
    }
    if (done->req.on_complete) {
      done->req.on_complete(done->req);
    }
    arena_.Delete(done);
  }
}

void IoScheduler::Reflow(Channel& channel, Reservation* from) {
  for (Reservation* r = from->next; r != nullptr; from = r, r = r->next) {
    const SimTime new_start = from->req.complete_time;
    const Duration delta = new_start - r->req.start_time;
    if (delta == 0) {
      break;  // Starts are contiguous; nothing further moves.
    }
    assert(delta > 0 && "reservations only ever shift later");
    r->req.start_time = new_start;
    r->req.complete_time = new_start + r->service;
    if (shift_observer_) {
      shift_observer_(r->req, delta);
    }
  }
}

IoScheduler::Dispatch IoScheduler::Place(int channel_index, IoRequest req,
                                         Duration service_now,
                                         const ServiceFn* service_fn) {
  assert(channel_index >= 0 && channel_index < num_channels());
  Channel& channel = channels_[static_cast<size_t>(channel_index)];
  const SimTime now = clock_.now();
  req.issue_time = now;
  Retire(channel_index, channel);

  // Fast path: under FIFO with no hooks to fire, the request's dispatch is
  // final at submission and nothing ever needs to revisit it — record only
  // its completion time.
  if (policy_ == IoSchedPolicy::kFifo && retire_hook_ == nullptr &&
      req.on_complete == nullptr) {
    const SimTime start = std::max(now, channel.busy_until);
    const Duration service =
        service_fn != nullptr ? (*service_fn)(start) : service_now;
    assert(service >= 0);
    Dispatch dispatch;
    dispatch.start = start;
    dispatch.complete = start + service;
    dispatch.wait = start - now;
    dispatch.service = service;
    channel.busy_until = dispatch.complete;
    channel.light.push(dispatch.complete);
    return dispatch;
  }

  // Insertion point (the node to insert after). FIFO and token-bucket: the
  // tail. Priority: ahead of queued reservations of a strictly lower class
  // that have not started (the head may be in service — start_time <= now —
  // and is never preempted). Equal classes keep submission order.
  // Weighted-fair: ahead of queued reservations with a larger virtual start
  // tag; equal tags keep submission order.
  Reservation* prev = channel.tail;
  uint64_t vstart = 0;
  SimTime earliest = now;
  if (policy_ == IoSchedPolicy::kPriority) {
    Reservation* before = nullptr;
    Reservation* cur = channel.head;
    while (cur != nullptr && cur->req.start_time <= now) {
      before = cur;
      cur = cur->next;
    }
    while (cur != nullptr && cur->req.priority <= req.priority) {
      before = cur;
      cur = cur->next;
    }
    prev = before;  // cur (if any) is the first reservation pushed later.
  } else if (policy_ == IoSchedPolicy::kWeightedFair) {
    // Advance the channel's virtual clock: past the reservation on the
    // medium, or — on an idle channel — to the largest finish tag assigned,
    // so a returning tenant is not charged for its idle time.
    Reservation* before = nullptr;
    Reservation* cur = channel.head;
    while (cur != nullptr && cur->req.start_time <= now) {
      channel.vtime = std::max(channel.vtime, cur->vstart);
      before = cur;
      cur = cur->next;
    }
    if (channel.head == nullptr) {
      channel.vtime = std::max(channel.vtime, channel.max_vfinish);
    }
    vstart = std::max(channel.vtime, TenantVfinish(channel, req.tenant));
    while (cur != nullptr && cur->vstart <= vstart) {
      before = cur;
      cur = cur->next;
    }
    prev = before;
  } else if (policy_ == IoSchedPolicy::kTokenBucket) {
    earliest = AdmitAt(req.tenant, req.bytes, now);
  }

  // Start when the predecessor completes; an idle channel serves at once.
  // Under FIFO the predecessor is whatever the channel last placed — light
  // requests included — which is exactly busy_until. Token-bucket requests
  // additionally wait out their admission time (the channel sits idle; the
  // queue is FIFO, so nothing may overtake the gated request).
  SimTime start = policy_ == IoSchedPolicy::kFifo
                      ? std::max(now, channel.busy_until)
                      : (prev == nullptr ? now : prev->req.complete_time);
  start = std::max(start, earliest);
  const Duration service =
      service_fn != nullptr ? (*service_fn)(start) : service_now;
  assert(service >= 0);
  req.start_time = start;
  req.complete_time = start + service;

  if (policy_ == IoSchedPolicy::kWeightedFair) {
    const uint64_t vfinish =
        vstart + static_cast<uint64_t>(service) * kVtScale /
                     tenant_weight(req.tenant);
    TenantVfinish(channel, req.tenant) = vfinish;
    channel.max_vfinish = std::max(channel.max_vfinish, vfinish);
  }

  Dispatch dispatch;
  dispatch.start = start;
  dispatch.complete = req.complete_time;
  dispatch.wait = start - now;
  dispatch.service = service;

  Reservation* node =
      arena_.New<Reservation>(std::move(req), service, next_seq_++, nullptr);
  node->vstart = vstart;
  node->next = prev == nullptr ? channel.head : prev->next;
  if (prev == nullptr) {
    channel.head = node;
  } else {
    prev->next = node;
  }
  if (node->next == nullptr) {
    channel.tail = node;
  }
  channel.queued += 1;
  Reflow(channel, node);
  channel.busy_until =
      std::max(channel.busy_until, channel.tail->req.complete_time);
  return dispatch;
}

IoScheduler::Dispatch IoScheduler::Submit(int channel, IoRequest req,
                                          Duration service_ns) {
  return Place(channel, std::move(req), service_ns, nullptr);
}

IoScheduler::Dispatch IoScheduler::Submit(int channel, IoRequest req,
                                          const ServiceFn& service) {
  return Place(channel, std::move(req), 0, &service);
}

void IoScheduler::Poll() {
  for (size_t i = 0; i < channels_.size(); ++i) {
    Retire(static_cast<int>(i), channels_[i]);
  }
}

SimTime IoScheduler::ChannelBusyUntil(int channel) const {
  return channels_[static_cast<size_t>(channel)].busy_until;
}

size_t IoScheduler::PendingOn(int channel) const {
  const Channel& ch = channels_[static_cast<size_t>(channel)];
  return ch.queued + ch.light.size();
}

size_t IoScheduler::pending() const {
  size_t total = 0;
  for (const Channel& channel : channels_) {
    total += channel.queued + channel.light.size();
  }
  return total;
}

}  // namespace ssmc
