#include "src/sim/io_scheduler.h"

#include <algorithm>
#include <cassert>
#include <cstddef>

namespace ssmc {

const char* IoOpName(IoOp op) {
  switch (op) {
    case IoOp::kRead:
      return "read";
    case IoOp::kProgram:
      return "program";
    case IoOp::kErase:
      return "erase";
    case IoOp::kDiskRead:
      return "disk-read";
    case IoOp::kDiskWrite:
      return "disk-write";
  }
  return "?";
}

const char* IoPriorityName(IoPriority priority) {
  switch (priority) {
    case IoPriority::kForeground:
      return "foreground";
    case IoPriority::kFlush:
      return "flush";
    case IoPriority::kCleaner:
      return "cleaner";
  }
  return "?";
}

void IoScheduler::TimeRing::push(SimTime t) {
  if (tail_ - head_ == buf_.size()) {
    const size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<SimTime> grown(cap);
    const size_t count = tail_ - head_;
    for (size_t i = 0; i < count; ++i) {
      grown[i] = buf_[(head_ + i) & mask_];
    }
    buf_ = std::move(grown);
    mask_ = cap - 1;
    head_ = 0;
    tail_ = count;
  }
  buf_[tail_ & mask_] = t;
  ++tail_;
}

IoScheduler::IoScheduler(SimClock& clock, int channels, IoSchedPolicy policy)
    : clock_(clock), policy_(policy), arena_(sizeof(Reservation)) {
  assert(channels >= 1);
  channels_.resize(static_cast<size_t>(channels));
}

IoScheduler::~IoScheduler() {
  // Destroy any still-queued reservations; the arena frees raw chunks only.
  for (Channel& channel : channels_) {
    Reservation* node = channel.head;
    while (node != nullptr) {
      Reservation* next = node->next;
      arena_.Delete(node);
      node = next;
    }
  }
}

void IoScheduler::set_policy(IoSchedPolicy policy) {
  assert(pending() == 0 && "policy change requires an idle pipeline");
  policy_ = policy;
}

void IoScheduler::Retire(int channel_index, Channel& channel) {
  const SimTime now = clock_.now();
  while (!channel.light.empty() && channel.light.front() <= now) {
    channel.light.pop();
  }
  while (channel.head != nullptr && channel.head->req.complete_time <= now) {
    Reservation* done = channel.head;
    channel.head = done->next;
    if (channel.head == nullptr) {
      channel.tail = nullptr;
    }
    channel.queued -= 1;
    if (retire_hook_) {
      retire_hook_(channel_index, done->req);
    }
    if (done->req.on_complete) {
      done->req.on_complete(done->req);
    }
    arena_.Delete(done);
  }
}

void IoScheduler::Reflow(Channel& channel, Reservation* from) {
  for (Reservation* r = from->next; r != nullptr; from = r, r = r->next) {
    const SimTime new_start = from->req.complete_time;
    const Duration delta = new_start - r->req.start_time;
    if (delta == 0) {
      break;  // Starts are contiguous; nothing further moves.
    }
    assert(delta > 0 && "reservations only ever shift later");
    r->req.start_time = new_start;
    r->req.complete_time = new_start + r->service;
    if (shift_observer_) {
      shift_observer_(r->req, delta);
    }
  }
}

IoScheduler::Dispatch IoScheduler::Place(int channel_index, IoRequest req,
                                         Duration service_now,
                                         const ServiceFn* service_fn) {
  assert(channel_index >= 0 && channel_index < num_channels());
  Channel& channel = channels_[static_cast<size_t>(channel_index)];
  const SimTime now = clock_.now();
  req.issue_time = now;
  Retire(channel_index, channel);

  // Fast path: under FIFO with no hooks to fire, the request's dispatch is
  // final at submission and nothing ever needs to revisit it — record only
  // its completion time.
  if (policy_ == IoSchedPolicy::kFifo && retire_hook_ == nullptr &&
      req.on_complete == nullptr) {
    const SimTime start = std::max(now, channel.busy_until);
    const Duration service =
        service_fn != nullptr ? (*service_fn)(start) : service_now;
    assert(service >= 0);
    Dispatch dispatch;
    dispatch.start = start;
    dispatch.complete = start + service;
    dispatch.wait = start - now;
    dispatch.service = service;
    channel.busy_until = dispatch.complete;
    channel.light.push(dispatch.complete);
    return dispatch;
  }

  // Insertion point (the node to insert after). FIFO: the tail. Priority:
  // ahead of queued reservations of a strictly lower class that have not
  // started (the head may be in service — start_time <= now — and is never
  // preempted). Equal classes keep submission order.
  Reservation* prev = channel.tail;
  if (policy_ == IoSchedPolicy::kPriority) {
    Reservation* before = nullptr;
    Reservation* cur = channel.head;
    while (cur != nullptr && cur->req.start_time <= now) {
      before = cur;
      cur = cur->next;
    }
    while (cur != nullptr && cur->req.priority <= req.priority) {
      before = cur;
      cur = cur->next;
    }
    prev = before;  // cur (if any) is the first reservation pushed later.
  }

  // Start when the predecessor completes; an idle channel serves at once.
  // Under FIFO the predecessor is whatever the channel last placed — light
  // requests included — which is exactly busy_until.
  const SimTime start =
      policy_ == IoSchedPolicy::kFifo
          ? std::max(now, channel.busy_until)
          : (prev == nullptr ? now : prev->req.complete_time);
  const Duration service =
      service_fn != nullptr ? (*service_fn)(start) : service_now;
  assert(service >= 0);
  req.start_time = start;
  req.complete_time = start + service;

  Dispatch dispatch;
  dispatch.start = start;
  dispatch.complete = req.complete_time;
  dispatch.wait = start - now;
  dispatch.service = service;

  Reservation* node =
      arena_.New<Reservation>(std::move(req), service, next_seq_++, nullptr);
  node->next = prev == nullptr ? channel.head : prev->next;
  if (prev == nullptr) {
    channel.head = node;
  } else {
    prev->next = node;
  }
  if (node->next == nullptr) {
    channel.tail = node;
  }
  channel.queued += 1;
  Reflow(channel, node);
  channel.busy_until =
      std::max(channel.busy_until, channel.tail->req.complete_time);
  return dispatch;
}

IoScheduler::Dispatch IoScheduler::Submit(int channel, IoRequest req,
                                          Duration service_ns) {
  return Place(channel, std::move(req), service_ns, nullptr);
}

IoScheduler::Dispatch IoScheduler::Submit(int channel, IoRequest req,
                                          const ServiceFn& service) {
  return Place(channel, std::move(req), 0, &service);
}

void IoScheduler::Poll() {
  for (size_t i = 0; i < channels_.size(); ++i) {
    Retire(static_cast<int>(i), channels_[i]);
  }
}

SimTime IoScheduler::ChannelBusyUntil(int channel) const {
  return channels_[static_cast<size_t>(channel)].busy_until;
}

size_t IoScheduler::PendingOn(int channel) const {
  const Channel& ch = channels_[static_cast<size_t>(channel)];
  return ch.queued + ch.light.size();
}

size_t IoScheduler::pending() const {
  size_t total = 0;
  for (const Channel& channel : channels_) {
    total += channel.queued + channel.light.size();
  }
  return total;
}

}  // namespace ssmc
