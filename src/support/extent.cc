#include "src/support/extent.h"

#include <memory>
#include <new>
#include <vector>

namespace ssmc {

// Shared between the pool object and every outstanding extent. Deleted by
// whichever side drops last: ~ExtentPool when no refs remain, or the final
// PayloadRef release after the pool object is gone.
struct ExtentPool::State {
  size_t payload_bytes;
  size_t extents_per_slab;
  size_t chunk_bytes;  // sizeof(Extent) header + payload, 16-byte aligned
  std::vector<std::unique_ptr<std::byte[]>> slabs;
  PayloadRef::Extent* free_list = nullptr;
  size_t live = 0;
  uint64_t slab_allocations = 0;
  uint64_t extents_allocated = 0;
  bool pool_alive = true;

  PayloadRef::Extent* ExtentAt(size_t slab, size_t index) {
    return reinterpret_cast<PayloadRef::Extent*>(slabs[slab].get() +
                                                 index * chunk_bytes);
  }

  void CarveSlab() {
    slabs.push_back(std::make_unique<std::byte[]>(
        chunk_bytes * extents_per_slab));
    ++slab_allocations;
    // Thread the new chunks onto the free list in reverse so allocation
    // hands them out in slab order.
    const size_t slab = slabs.size() - 1;
    for (size_t i = extents_per_slab; i-- > 0;) {
      PayloadRef::Extent* e = ExtentAt(slab, i);
      e->state = this;
      e->payload_bytes = static_cast<uint32_t>(payload_bytes);
      e->next_free = free_list;
      free_list = e;
    }
  }

  PayloadRef::Extent* Pop() {
    if (free_list == nullptr) CarveSlab();
    PayloadRef::Extent* e = free_list;
    free_list = e->next_free;
    e->refs = 1;
    ++live;
    ++extents_allocated;
    return e;
  }
};

void PayloadRef::Recycle(Extent* e) {
  auto* state = static_cast<ExtentPool::State*>(e->state);
  e->next_free = state->free_list;
  state->free_list = e;
  --state->live;
  if (!state->pool_alive && state->live == 0) delete state;
}

void PayloadRef::CloneForWrite() {
  auto* state = static_cast<ExtentPool::State*>(e_->state);
  assert(state->pool_alive && "CoW after the owning ExtentPool died");
  Extent* clone = state->Pop();
  std::memcpy(Payload(clone), Payload(e_), state->payload_bytes);
  if (--e_->refs == 0) {
    Recycle(e_);
  }
  e_ = clone;
}

namespace {

size_t AlignUp16(size_t n) { return (n + 15) & ~size_t{15}; }

}  // namespace

ExtentPool::ExtentPool(size_t payload_bytes, size_t extents_per_slab)
    : state_(new State{}) {
  assert(payload_bytes > 0 && extents_per_slab > 0);
  assert(payload_bytes <= ~uint32_t{0} && "extent size field is 32-bit");
  state_->payload_bytes = payload_bytes;
  state_->extents_per_slab = extents_per_slab;
  static_assert(sizeof(PayloadRef::Extent) % 16 == 0,
                "payload alignment depends on a 16-byte-multiple header");
  state_->chunk_bytes = sizeof(PayloadRef::Extent) + AlignUp16(payload_bytes);
}

ExtentPool::~ExtentPool() {
  if (state_->live == 0) {
    delete state_;
  } else {
    state_->pool_alive = false;  // last PayloadRef release frees the slabs
  }
}

PayloadRef ExtentPool::Allocate() { return PayloadRef(state_->Pop()); }

PayloadRef ExtentPool::AllocateCopy(const uint8_t* src) {
  PayloadRef::Extent* e = state_->Pop();
  std::memcpy(PayloadRef::Payload(e), src, state_->payload_bytes);
  return PayloadRef(e);
}

void ExtentPool::Reset() {
  assert(state_->live == 0 && "Reset with outstanding PayloadRefs");
  state_->free_list = nullptr;
  for (size_t slab = state_->slabs.size(); slab-- > 0;) {
    for (size_t i = state_->extents_per_slab; i-- > 0;) {
      PayloadRef::Extent* e = state_->ExtentAt(slab, i);
      e->state = state_;
      e->next_free = state_->free_list;
      state_->free_list = e;
    }
  }
  // Rebuilt in reverse above so Pop() hands out slab 0, entry 0 first again.
}

size_t ExtentPool::payload_bytes() const { return state_->payload_bytes; }
size_t ExtentPool::live() const { return state_->live; }
size_t ExtentPool::capacity() const {
  return state_->slabs.size() * state_->extents_per_slab;
}
uint64_t ExtentPool::slab_allocations() const {
  return state_->slab_allocations;
}
uint64_t ExtentPool::extents_allocated() const {
  return state_->extents_allocated;
}

}  // namespace ssmc
