// Lightweight status / result types used across the ssmc libraries.
//
// The simulator is exception-free on its hot paths: operations that can fail
// return an ssmc::Status or an ssmc::Result<T>, mirroring the style of
// kernel-adjacent C++ codebases. Both types are cheap to copy in the OK case.

#ifndef SSMC_SRC_SUPPORT_STATUS_H_
#define SSMC_SRC_SUPPORT_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ssmc {

// Error categories. Kept deliberately small; the message carries detail.
enum class ErrorCode {
  kOk = 0,
  kNotFound,          // No such file, sector, mapping, ...
  kAlreadyExists,     // Create of an existing name.
  kInvalidArgument,   // Malformed request (bad offset, bad flag combination).
  kOutOfRange,        // Address or offset beyond device / file bounds.
  kNoSpace,           // Allocation failed: device or pool exhausted.
  kResourceExhausted, // A bounded runtime resource (DRAM pages) ran out
                      // even after reclaim/demotion pressure was applied.
  kPermissionDenied,  // Protection violation (read-only mapping, etc.).
  kFailedPrecondition,// Operation illegal in current state (e.g. write to
                      // un-erased flash, unmounted file system).
  kDataLoss,          // Stored data was corrupted or lost (worn-out flash,
                      // battery failure).
  kUnavailable,       // Device off-line (battery dead, bank busy in
                      // non-blocking mode).
  kInternal,          // Invariant violation; indicates a bug.
};

// Human-readable name for an error code ("NOT_FOUND", ...).
std::string_view ErrorCodeName(ErrorCode code);

// A Status is either OK or an (ErrorCode, message) pair.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such file".
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  ErrorCode code_;
  std::string message_;
};

// Convenience constructors, e.g. return NotFound("no such file: ", path);
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status InvalidArgumentError(std::string message);
Status OutOfRangeError(std::string message);
Status NoSpaceError(std::string message);
Status ResourceExhaustedError(std::string message);
Status PermissionDeniedError(std::string message);
Status FailedPreconditionError(std::string message);
Status DataLossError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);

// Result<T>: a Status or a value. Use result.ok() / result.value().
template <typename T>
class Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& value_or(const T& fallback) const {
    return ok() ? *value_ : fallback;
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ssmc

// Propagate a non-OK Status from an expression; usable in functions that
// return Status.
#define SSMC_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::ssmc::Status ssmc_status_ = (expr);     \
    if (!ssmc_status_.ok()) {                 \
      return ssmc_status_;                    \
    }                                         \
  } while (false)

#endif  // SSMC_SRC_SUPPORT_STATUS_H_
