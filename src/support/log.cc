#include "src/support/log.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace ssmc {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_emit_mutex;
thread_local int t_cell_id = -1;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }

ScopedLogCell::ScopedLogCell(int cell_id) : previous_(t_cell_id) {
  t_cell_id = cell_id;
}

ScopedLogCell::~ScopedLogCell() { t_cell_id = previous_; }

int CurrentLogCell() { return t_cell_id; }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(GetLogLevel())) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  if (t_cell_id >= 0) {
    std::fprintf(stderr, "[%s] [cell %d] %s\n", LevelName(level), t_cell_id,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

}  // namespace ssmc
