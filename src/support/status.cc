#include "src/support/status.h"

namespace ssmc {

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kNoSpace:
      return "NO_SPACE";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kPermissionDenied:
      return "PERMISSION_DENIED";
    case ErrorCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case ErrorCode::kDataLoss:
      return "DATA_LOSS";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out(ErrorCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status NotFoundError(std::string message) {
  return Status(ErrorCode::kNotFound, std::move(message));
}
Status AlreadyExistsError(std::string message) {
  return Status(ErrorCode::kAlreadyExists, std::move(message));
}
Status InvalidArgumentError(std::string message) {
  return Status(ErrorCode::kInvalidArgument, std::move(message));
}
Status OutOfRangeError(std::string message) {
  return Status(ErrorCode::kOutOfRange, std::move(message));
}
Status NoSpaceError(std::string message) {
  return Status(ErrorCode::kNoSpace, std::move(message));
}
Status ResourceExhaustedError(std::string message) {
  return Status(ErrorCode::kResourceExhausted, std::move(message));
}
Status PermissionDeniedError(std::string message) {
  return Status(ErrorCode::kPermissionDenied, std::move(message));
}
Status FailedPreconditionError(std::string message) {
  return Status(ErrorCode::kFailedPrecondition, std::move(message));
}
Status DataLossError(std::string message) {
  return Status(ErrorCode::kDataLoss, std::move(message));
}
Status UnavailableError(std::string message) {
  return Status(ErrorCode::kUnavailable, std::move(message));
}
Status InternalError(std::string message) {
  return Status(ErrorCode::kInternal, std::move(message));
}

}  // namespace ssmc
