// ASCII table writer used by the benchmark harnesses to print paper-style
// tables (right-aligned numeric columns, a header rule, optional title).

#ifndef SSMC_SRC_SUPPORT_TABLE_H_
#define SSMC_SRC_SUPPORT_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace ssmc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  // Optional title printed above the table.
  void set_title(std::string title) { title_ = std::move(title); }

  // Starts a new row; subsequent Add* calls fill its cells left to right.
  void AddRow() { rows_.emplace_back(); }

  void AddCell(std::string text) { rows_.back().push_back(std::move(text)); }
  void AddCell(const char* text) { rows_.back().emplace_back(text); }
  void AddCell(int64_t v) { AddCell(std::to_string(v)); }
  void AddCell(uint64_t v) { AddCell(std::to_string(v)); }
  void AddCell(int v) { AddCell(static_cast<int64_t>(v)); }
  void AddCell(unsigned v) { AddCell(static_cast<uint64_t>(v)); }
  // Doubles are printed with `digits` fraction digits.
  void AddCell(double v, int digits);

  size_t row_count() const { return rows_.size(); }

  // Renders to the stream. Columns wider than their widest cell are padded;
  // cells that look numeric are right-aligned, text is left-aligned.
  void Print(std::ostream& os) const;

  // Renders to a string (used by tests).
  std::string ToString() const;

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_SUPPORT_TABLE_H_
