#include "src/support/arena.h"

#include <cassert>

namespace ssmc {

namespace {

// Round the chunk size up so every chunk is max-aligned and large enough to
// hold the free-list link.
size_t RoundChunk(size_t chunk_bytes) {
  constexpr size_t kAlign = alignof(std::max_align_t);
  if (chunk_bytes < sizeof(void*)) {
    chunk_bytes = sizeof(void*);
  }
  return (chunk_bytes + kAlign - 1) / kAlign * kAlign;
}

}  // namespace

RequestArena::RequestArena(size_t chunk_bytes, size_t chunks_per_slab)
    : chunk_bytes_(RoundChunk(chunk_bytes)),
      chunks_per_slab_(chunks_per_slab) {
  assert(chunks_per_slab_ > 0);
}

void RequestArena::CarveSlab() {
  slabs_.push_back(
      std::make_unique<std::byte[]>(chunk_bytes_ * chunks_per_slab_));
  std::byte* base = slabs_.back().get();
  // Thread the fresh chunks onto the free list back-to-front so they are
  // handed out in address order.
  for (size_t i = chunks_per_slab_; i-- > 0;) {
    auto* node = reinterpret_cast<FreeNode*>(base + i * chunk_bytes_);
    node->next = free_;
    free_ = node;
  }
}

void* RequestArena::Allocate() {
  if (free_ == nullptr) {
    CarveSlab();
  }
  FreeNode* node = free_;
  free_ = node->next;
  live_ += 1;
  return node;
}

void RequestArena::Release(void* p) {
  assert(p != nullptr);
  assert(live_ > 0);
  auto* node = static_cast<FreeNode*>(p);
  node->next = free_;
  free_ = node;
  live_ -= 1;
}

void RequestArena::Reset() {
  free_ = nullptr;
  live_ = 0;
  for (const std::unique_ptr<std::byte[]>& slab : slabs_) {
    std::byte* base = slab.get();
    for (size_t i = chunks_per_slab_; i-- > 0;) {
      auto* node = reinterpret_cast<FreeNode*>(base + i * chunk_bytes_);
      node->next = free_;
      free_ = node;
    }
  }
  generation_ += 1;
}

}  // namespace ssmc
