#include "src/support/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>

#if defined(__linux__)
#include <sched.h>
#endif

namespace ssmc {

ThreadPool::ThreadPool(int threads) {
  threads = std::max(threads, 1);
  workers_.reserve(static_cast<size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { Worker(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::Worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ && drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

int AvailableCpus() {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof(set), &set) == 0) {
    const int n = CPU_COUNT(&set);
    if (n > 0) {
      return n;
    }
  }
#endif
  const unsigned n = std::thread::hardware_concurrency();
  return n > 0 ? static_cast<int>(n) : 1;
}

int ParsePositiveInt(const char* text) {
  if (text == nullptr || *text == '\0') {
    return 0;
  }
  char* end = nullptr;
  const long v = std::strtol(text, &end, 10);
  if (end == nullptr || *end != '\0' || v <= 0 || v > 1 << 20) {
    return 0;
  }
  return static_cast<int>(v);
}

}  // namespace

int DefaultJobs() {
  if (const int env = ParsePositiveInt(std::getenv("SSMC_JOBS")); env > 0) {
    return env;
  }
  return AvailableCpus();
}

int JobsFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      if (const int v = ParsePositiveInt(arg + 7); v > 0) {
        return v;
      }
    } else if (std::strcmp(arg, "--jobs") == 0 || std::strcmp(arg, "-j") == 0) {
      if (i + 1 < argc) {
        if (const int v = ParsePositiveInt(argv[i + 1]); v > 0) {
          return v;
        }
      }
    } else if (std::strncmp(arg, "-j", 2) == 0) {
      if (const int v = ParsePositiveInt(arg + 2); v > 0) {
        return v;
      }
    }
  }
  return DefaultJobs();
}

}  // namespace ssmc
