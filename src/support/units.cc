#include "src/support/units.h"

#include <cmath>
#include <cstdio>

namespace ssmc {

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatDuration(Duration d) {
  const bool neg = d < 0;
  const double ns = std::abs(static_cast<double>(d));
  std::string out;
  if (ns < 1e3) {
    out = FormatDouble(ns, 0) + " ns";
  } else if (ns < 1e6) {
    out = FormatDouble(ns / 1e3, 2) + " us";
  } else if (ns < 1e9) {
    out = FormatDouble(ns / 1e6, 2) + " ms";
  } else if (ns < 60e9) {
    out = FormatDouble(ns / 1e9, 2) + " s";
  } else if (ns < 3600e9) {
    out = FormatDouble(ns / 60e9, 1) + " min";
  } else {
    out = FormatDouble(ns / 3600e9, 1) + " h";
  }
  return neg ? "-" + out : out;
}

std::string FormatSize(uint64_t bytes) {
  if (bytes < kKiB) {
    return std::to_string(bytes) + " B";
  }
  if (bytes < kMiB) {
    return FormatDouble(static_cast<double>(bytes) / kKiB, 1) + " KiB";
  }
  if (bytes < kGiB) {
    return FormatDouble(static_cast<double>(bytes) / kMiB, 1) + " MiB";
  }
  return FormatDouble(static_cast<double>(bytes) / kGiB, 2) + " GiB";
}

std::string FormatEnergy(double nanojoules) {
  const double nj = std::abs(nanojoules);
  std::string out;
  if (nj < 1e3) {
    out = FormatDouble(nj, 1) + " nJ";
  } else if (nj < 1e6) {
    out = FormatDouble(nj / 1e3, 2) + " uJ";
  } else if (nj < 1e9) {
    out = FormatDouble(nj / 1e6, 2) + " mJ";
  } else {
    out = FormatDouble(nj / 1e9, 2) + " J";
  }
  return nanojoules < 0 ? "-" + out : out;
}

}  // namespace ssmc
