// Time, size, energy, and money units used throughout the simulator.
//
// Simulated time is a signed 64-bit count of nanoseconds (SimTime); 2^63 ns
// is ~292 years, ample for any experiment. Sizes are byte counts. Energy is
// accounted in nanojoules as a double (power integrals need fractions).

#ifndef SSMC_SRC_SUPPORT_UNITS_H_
#define SSMC_SRC_SUPPORT_UNITS_H_

#include <cstdint>
#include <string>

namespace ssmc {

// Simulated time in nanoseconds since simulation start.
using SimTime = int64_t;
// A duration in nanoseconds.
using Duration = int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1000 * kNanosecond;
inline constexpr Duration kMillisecond = 1000 * kMicrosecond;
inline constexpr Duration kSecond = 1000 * kMillisecond;
inline constexpr Duration kMinute = 60 * kSecond;
inline constexpr Duration kHour = 60 * kMinute;
inline constexpr Duration kDay = 24 * kHour;

inline constexpr uint64_t kKiB = 1024;
inline constexpr uint64_t kMiB = 1024 * kKiB;
inline constexpr uint64_t kGiB = 1024 * kMiB;

// "1.5 us", "230 ms", "3.2 s" — two-significant-digit humanized duration.
std::string FormatDuration(Duration d);

// "512 B", "4.0 KiB", "1.5 MiB".
std::string FormatSize(uint64_t bytes);

// "12.3 mJ", "1.2 J" from nanojoules.
std::string FormatEnergy(double nanojoules);

// Fixed-point formatting helper: value with `digits` fraction digits.
std::string FormatDouble(double value, int digits);

}  // namespace ssmc

#endif  // SSMC_SRC_SUPPORT_UNITS_H_
