// Fixed-chunk slab pool for hot-path pipeline objects.
//
// The request pipeline allocates many short-lived, identically-sized objects
// (queued I/O reservations, span-trace events). Allocating each from the
// general heap costs a malloc/free pair per object plus cache-scattered
// placement; this pool hands out fixed-size chunks carved from slabs and
// recycles them through an intrusive free list, so steady-state
// allocate/release cycles touch no allocator at all and neighbors in
// allocation order tend to be neighbors in memory.
//
// Addresses are stable for the lifetime of a generation: a chunk returned by
// Allocate() stays put until Release() or Reset(). Reset() reclaims every
// chunk at once (without running destructors — callers own object lifetime)
// and bumps the generation counter so holders of stale pointers can detect
// reuse.
//
// Not thread-safe; the simulator is single-threaded by design.

#ifndef SSMC_SRC_SUPPORT_ARENA_H_
#define SSMC_SRC_SUPPORT_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace ssmc {

class RequestArena {
 public:
  // `chunk_bytes` is the fixed allocation size (at least pointer-sized, for
  // the free-list link). `chunks_per_slab` tunes the growth quantum.
  explicit RequestArena(size_t chunk_bytes, size_t chunks_per_slab = 64);

  RequestArena(const RequestArena&) = delete;
  RequestArena& operator=(const RequestArena&) = delete;

  // O(1). Pops the free list, carving a new slab only when it is empty.
  void* Allocate();

  // O(1). Returns `p` (which must have come from this arena's current
  // generation) to the free list.
  void Release(void* p);

  // Reclaims every outstanding chunk and bumps the generation. Does not run
  // destructors and does not return slab memory to the heap — the high-water
  // mark is retained for reuse.
  void Reset();

  // Typed helpers: placement-construct / destroy in a chunk.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(alignof(T) <= alignof(std::max_align_t));
    return ::new (Allocate()) T(std::forward<Args>(args)...);
  }
  template <typename T>
  void Delete(T* p) {
    p->~T();
    Release(p);
  }

  uint64_t generation() const { return generation_; }
  size_t chunk_bytes() const { return chunk_bytes_; }
  // Chunks currently handed out / total chunks ever carved.
  size_t live() const { return live_; }
  size_t capacity() const { return slabs_.size() * chunks_per_slab_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  void CarveSlab();

  size_t chunk_bytes_;
  size_t chunks_per_slab_;
  std::vector<std::unique_ptr<std::byte[]>> slabs_;
  FreeNode* free_ = nullptr;
  size_t live_ = 0;
  uint64_t generation_ = 1;
};

}  // namespace ssmc

#endif  // SSMC_SRC_SUPPORT_ARENA_H_
