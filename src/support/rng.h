// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic component in ssmc (workload generators, failure injectors,
// placement randomization) takes an explicit Rng so that simulations are
// reproducible from a single seed. The generator is xoshiro256**, seeded via
// splitmix64, which is both fast and high quality; we deliberately avoid
// std::mt19937 so that results are identical across standard libraries.

#ifndef SSMC_SRC_SUPPORT_RNG_H_
#define SSMC_SRC_SUPPORT_RNG_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace ssmc {

class Rng {
 public:
  explicit Rng(uint64_t seed) { Seed(seed); }

  // Re-seeds the generator; identical seeds yield identical streams.
  void Seed(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  // Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) {
    assert(bound > 0);
    // Multiply-shift rejection-free mapping (Lemire); bias is negligible for
    // simulation purposes and the mapping is deterministic.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBelow(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

  // Exponential with given mean (> 0).
  double NextExponential(double mean) {
    assert(mean > 0);
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) {
      u = 0x1.0p-53;
    }
    return -mean * std::log(u);
  }

  // Log-normal parameterized by the underlying normal's mu/sigma.
  double NextLogNormal(double mu, double sigma) {
    return std::exp(mu + sigma * NextGaussian());
  }

  // Standard normal via Box-Muller (one value per call; simple & adequate).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 <= 0.0) {
      u1 = 0x1.0p-53;
    }
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  }

  // Bounded Pareto sample in [lo, hi] with shape alpha. Used for file sizes.
  double NextBoundedPareto(double alpha, double lo, double hi) {
    assert(alpha > 0 && lo > 0 && hi > lo);
    const double u = NextDouble();
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4] = {};
};

// Samples indices 0..n-1 with Zipf-like skew (rank r has weight 1/(r+1)^s).
// Precomputes the CDF once; Sample() is O(log n). Used to pick "hot" files.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double skew) : cdf_(n) {
    assert(n > 0);
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      cdf_[i] = total;
    }
    for (auto& c : cdf_) {
      c /= total;
    }
  }

  size_t size() const { return cdf_.size(); }

  size_t Sample(Rng& rng) const {
    const double u = rng.NextDouble();
    // Binary search for the first CDF entry >= u.
    size_t lo = 0;
    size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_SUPPORT_RNG_H_
