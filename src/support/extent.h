// Reference-counted payload extents for the zero-copy data plane.
//
// Every layer of the simulator used to move sector payloads by value:
// FlashStore's cleaner read each relocated page into a scratch buffer and
// programmed the copy back, WriteBuffer flushes materialized a fresh
// std::vector per page, and clean-cache promotion copied flash payloads into
// DRAM chunks. The bytes never change on these paths — only *where the
// simulator files them* changes — so the copies were pure host-side overhead.
//
// An ExtentPool hands out fixed-size payload extents (one per FTL page)
// carved from slabs, recycled through an intrusive free list exactly like
// RequestArena. A PayloadRef is a refcounted handle to one extent: copying a
// ref is a counter bump, so cleaner relocation, buffer-cache aliasing, and
// clean-cache promotion all share one physical buffer. Writes go through
// MutableData(), which clones the extent first when it is shared
// (copy-on-write), preserving value semantics for every holder.
//
// Lifetime: extents may legitimately outlive the ExtentPool object — a
// FlashDevice holding programmed payloads is destroyed *after* the
// FlashStore that owns the pool. The pool therefore keeps its slabs in a
// detachable State block that self-destructs only when the pool is gone AND
// the last extent ref drops, so destruction order between layers is a
// non-issue.
//
// Not thread-safe; the simulator is single-threaded by design (each
// parallel-harness cell owns its own machine and pools).

#ifndef SSMC_SRC_SUPPORT_EXTENT_H_
#define SSMC_SRC_SUPPORT_EXTENT_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>

namespace ssmc {

class ExtentPool;

// Refcounted handle to one pool-allocated payload extent. Default-constructed
// refs are empty (operator bool == false). Copy bumps the refcount; the last
// ref recycles the extent into its pool's free list.
class PayloadRef {
 public:
  PayloadRef() = default;
  ~PayloadRef() { Reset(); }

  PayloadRef(const PayloadRef& other) : e_(other.e_) {
    if (e_ != nullptr) ++e_->refs;
  }
  PayloadRef& operator=(const PayloadRef& other) {
    if (other.e_ != nullptr) ++other.e_->refs;
    Reset();
    e_ = other.e_;
    return *this;
  }
  PayloadRef(PayloadRef&& other) noexcept : e_(other.e_) { other.e_ = nullptr; }
  PayloadRef& operator=(PayloadRef&& other) noexcept {
    if (this != &other) {
      Reset();
      e_ = other.e_;
      other.e_ = nullptr;
    }
    return *this;
  }

  explicit operator bool() const { return e_ != nullptr; }

  // Read-only view of the payload. Valid while this ref is live.
  const uint8_t* data() const { return Payload(e_); }
  size_t size() const { return e_ != nullptr ? e_->payload_bytes : 0; }

  // Writable view, copy-on-write: when the extent is shared with other refs,
  // this ref is repointed at a fresh clone first so the other holders keep
  // the old bytes. Sole owners write in place.
  uint8_t* MutableData() {
    assert(e_ != nullptr);
    if (e_->refs > 1) {
      CloneForWrite();
    }
    return Payload(e_);
  }

  // Advisory: start pulling this extent's header line (the refcount word)
  // toward the core ahead of a copy/Reset. The zero-copy data plane bumps
  // counters on extents scattered across the slab heap; issuing these
  // prefetches in a batch before a relocation loop hides the misses.
  void Prefetch() const {
    if (e_ != nullptr) {
      __builtin_prefetch(e_, 1);
    }
  }

  // Number of refs sharing this extent (0 for an empty ref).
  uint32_t use_count() const { return e_ != nullptr ? e_->refs : 0; }

  bool SharesStorageWith(const PayloadRef& other) const {
    return e_ != nullptr && e_ == other.e_;
  }

  // Drops this ref. The dec-and-test stays inline (the data plane churns
  // refs on every write and relocation); only the last-ref recycle leaves
  // the header.
  void Reset() {
    if (e_ == nullptr) {
      return;
    }
    if (--e_->refs == 0) {
      Recycle(e_);
    }
    e_ = nullptr;
  }

 private:
  friend class ExtentPool;

  // Header preceding each payload in the pool's slab storage. alignas keeps
  // payload bytes at a 16-byte boundary for memcpy/memcmp. payload_bytes
  // duplicates the pool's extent size so size() needs no State chase; it
  // lives in what was padding anyway (24 -> 32 bytes either way).
  struct alignas(16) Extent {
    void* state;      // ExtentPool::State, typed in extent.cc
    Extent* next_free;
    uint32_t refs;
    uint32_t payload_bytes;
  };

  static uint8_t* Payload(Extent* e) {
    return reinterpret_cast<uint8_t*>(e) + sizeof(Extent);
  }

  // Returns a zero-ref extent to its pool's free list (and reaps the pool's
  // State if the pool object is already gone).
  static void Recycle(Extent* e);

  // Repoints this ref at a fresh clone of its shared extent (the CoW slow
  // path of MutableData).
  void CloneForWrite();

  explicit PayloadRef(Extent* e) : e_(e) {}

  Extent* e_ = nullptr;
};

// Slab pool of fixed-size payload extents. `payload_bytes` is the extent
// payload size (an FTL page / FS block); `extents_per_slab` tunes the growth
// quantum. Steady-state Allocate/release cycles touch no allocator —
// slab_allocations() counts the heap events so tests can assert zero growth.
class ExtentPool {
 public:
  explicit ExtentPool(size_t payload_bytes, size_t extents_per_slab = 64);
  ~ExtentPool();

  ExtentPool(const ExtentPool&) = delete;
  ExtentPool& operator=(const ExtentPool&) = delete;

  // O(1). Pops the free list (carving a new slab only when empty) and returns
  // a sole-owner ref. Payload bytes are uninitialized.
  PayloadRef Allocate();

  // Allocate + memcpy of exactly payload_bytes() from `src`.
  PayloadRef AllocateCopy(const uint8_t* src);

  // Rebuilds the free list in slab order. Requires every ref to have been
  // dropped (live() == 0); slab memory is retained, so a pool reused after
  // Reset() serves its previous high-water mark without touching the heap.
  void Reset();

  size_t payload_bytes() const;
  // Extents currently referenced / total extents ever carved.
  size_t live() const;
  size_t capacity() const;
  // Heap slab allocations performed (monotonic) — the zero-alloc probe.
  uint64_t slab_allocations() const;
  // Total Allocate()/AllocateCopy() calls served (monotonic).
  uint64_t extents_allocated() const;

 private:
  friend class PayloadRef;
  struct State;

  State* state_;
};

}  // namespace ssmc

#endif  // SSMC_SRC_SUPPORT_EXTENT_H_
