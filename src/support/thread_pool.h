// Fixed-size worker pool for running independent simulation cells on host
// threads. The simulator itself stays single-threaded: nothing in here is
// for use *inside* a cell. A cell is a closed world (its own SimClock,
// devices, file system, Rng), so cells scheduled on different workers share
// no mutable state and the pool needs no synchronization beyond its queue.
//
// Shutdown drains: the destructor runs every task already submitted before
// joining the workers, so a submitted future is always eventually ready.
// Exceptions thrown by a task are captured by its std::packaged_task and
// rethrown from future.get() in the submitting thread.

#ifndef SSMC_SRC_SUPPORT_THREAD_POOL_H_
#define SSMC_SRC_SUPPORT_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ssmc {

class ThreadPool {
 public:
  // Spawns `threads` workers (clamped to >= 1).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  // Enqueues `fn` and returns a future for its result. The future carries
  // any exception the task throws.
  template <typename Fn>
  auto Submit(Fn fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> result = task->get_future();
    Enqueue([task] { (*task)(); });
    return result;
  }

 private:
  void Enqueue(std::function<void()> task);
  void Worker();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

// Worker count for parallel harness runs: the SSMC_JOBS environment variable
// if set to a positive integer, else the number of CPUs this process may run
// on (affinity-aware, so container limits are respected), else 1.
int DefaultJobs();

// Scans argv for a trailing `--jobs=N` (or `-j N` / `-jN`) override; returns
// DefaultJobs() when absent or unparsable. Benches pass their argc/argv here.
int JobsFromArgs(int argc, char** argv);

}  // namespace ssmc

#endif  // SSMC_SRC_SUPPORT_THREAD_POOL_H_
