// Minimal leveled logging. Off by default so simulations stay quiet; benches
// and examples can raise the level for narration. Thread-safe: each
// simulation cell is single-threaded, but the parallel harness runs many
// cells concurrently, so the level is atomic, emission is serialized under a
// mutex (lines never interleave), and a thread-local cell id tags every line
// produced inside a harness cell with its origin.

#ifndef SSMC_SRC_SUPPORT_LOG_H_
#define SSMC_SRC_SUPPORT_LOG_H_

#include <sstream>
#include <string>

namespace ssmc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one formatted line to stderr if `level` >= threshold.
void LogMessage(LogLevel level, const std::string& message);

// Tags every log line emitted by the current thread with "[cell N]" while in
// scope (the parallel runner wraps each cell in one). -1 = untagged.
class ScopedLogCell {
 public:
  explicit ScopedLogCell(int cell_id);
  ~ScopedLogCell();

  ScopedLogCell(const ScopedLogCell&) = delete;
  ScopedLogCell& operator=(const ScopedLogCell&) = delete;

 private:
  int previous_;
};

// The current thread's cell tag (-1 when none).
int CurrentLogCell();

namespace log_internal {

class LineLogger {
 public:
  explicit LineLogger(LogLevel level) : level_(level) {}
  ~LineLogger() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LineLogger& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal
}  // namespace ssmc

#define SSMC_LOG(level) \
  ::ssmc::log_internal::LineLogger(::ssmc::LogLevel::level)

#endif  // SSMC_SRC_SUPPORT_LOG_H_
