#include "src/support/table.h"

#include <algorithm>
#include <sstream>

#include "src/support/units.h"

namespace ssmc {

namespace {

bool LooksNumeric(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  size_t digits = 0;
  for (char c : s) {
    if ((c >= '0' && c <= '9')) {
      ++digits;
    } else if (c != '.' && c != '-' && c != '+' && c != '%' && c != 'e' &&
               c != ' ' && c != 'x') {
      return false;
    }
  }
  return digits > 0;
}

}  // namespace

void Table::AddCell(double v, int digits) { AddCell(FormatDouble(v, digits)); }

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  if (!title_.empty()) {
    os << title_ << "\n";
  }

  auto print_rule = [&] {
    for (size_t c = 0; c < widths.size(); ++c) {
      os << "+" << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };

  auto print_row = [&](const std::vector<std::string>& cells, bool header) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < cells.size() ? cells[c] : "";
      const bool right = !header && LooksNumeric(cell);
      os << "| ";
      if (right) {
        os << std::string(widths[c] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(widths[c] - cell.size(), ' ');
      }
      os << " ";
    }
    os << "|\n";
  };

  print_rule();
  print_row(headers_, /*header=*/true);
  print_rule();
  for (const auto& row : rows_) {
    print_row(row, /*header=*/false);
  }
  print_rule();
}

std::string Table::ToString() const {
  std::ostringstream oss;
  Print(oss);
  return oss.str();
}

}  // namespace ssmc
